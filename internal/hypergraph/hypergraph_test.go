package hypergraph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"hyperplex/internal/xrand"
)

// tiny returns the running example used across this file:
//
//	c1: {a, b, c}
//	c2: {b, c}        (contained in c1 → non-maximal)
//	c3: {c, d}
//	c4: {e}
//	c5: {b, c}        (duplicate of c2)
//	isolated vertex z
func tiny(t *testing.T) *Hypergraph {
	t.Helper()
	b := NewBuilder()
	b.AddEdge("c1", "a", "b", "c")
	b.AddEdge("c2", "b", "c")
	b.AddEdge("c3", "c", "d")
	b.AddEdge("c4", "e")
	b.AddEdge("c5", "b", "c")
	b.AddVertex("z")
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return h
}

func TestBuilderBasic(t *testing.T) {
	h := tiny(t)
	if got, want := h.NumVertices(), 6; got != want {
		t.Errorf("NumVertices = %d, want %d", got, want)
	}
	if got, want := h.NumEdges(), 5; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
	if got, want := h.NumPins(), 3+2+2+1+2; got != want {
		t.Errorf("NumPins = %d, want %d", got, want)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDegrees(t *testing.T) {
	h := tiny(t)
	c, _ := h.VertexID("c")
	if got, want := h.VertexDegree(c), 4; got != want {
		t.Errorf("deg(c) = %d, want %d", got, want)
	}
	z, _ := h.VertexID("z")
	if got := h.VertexDegree(z); got != 0 {
		t.Errorf("deg(z) = %d, want 0", got)
	}
	c1, _ := h.EdgeID("c1")
	if got, want := h.EdgeDegree(c1), 3; got != want {
		t.Errorf("deg(c1) = %d, want %d", got, want)
	}
	if got, want := h.MaxVertexDegree(), 4; got != want {
		t.Errorf("MaxVertexDegree = %d, want %d", got, want)
	}
	if got, want := h.MaxEdgeDegree(), 3; got != want {
		t.Errorf("MaxEdgeDegree = %d, want %d", got, want)
	}
}

func TestNames(t *testing.T) {
	h := tiny(t)
	if _, ok := h.VertexID("nope"); ok {
		t.Error("VertexID(nope) found a vertex")
	}
	a, ok := h.VertexID("a")
	if !ok || h.VertexName(a) != "a" {
		t.Errorf("VertexID/VertexName round trip failed: %d %v", a, ok)
	}
	f, ok := h.EdgeID("c3")
	if !ok || h.EdgeName(f) != "c3" {
		t.Errorf("EdgeID/EdgeName round trip failed: %d %v", f, ok)
	}
}

func TestDuplicateEdgeName(t *testing.T) {
	b := NewBuilder()
	b.AddEdge("x", "a")
	b.AddEdge("x", "b")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a duplicate hyperedge name")
	}
}

func TestDuplicateMembersCollapsed(t *testing.T) {
	b := NewBuilder()
	b.AddEdge("e", "a", "b", "a", "b", "a")
	h := b.MustBuild()
	if got := h.EdgeDegree(0); got != 2 {
		t.Errorf("EdgeDegree = %d, want 2 (duplicates collapsed)", got)
	}
}

func TestEdgeContains(t *testing.T) {
	h := tiny(t)
	c1, _ := h.EdgeID("c1")
	for name, want := range map[string]bool{"a": true, "b": true, "c": true, "d": false, "e": false, "z": false} {
		v, _ := h.VertexID(name)
		if got := h.EdgeContains(c1, v); got != want {
			t.Errorf("EdgeContains(c1, %s) = %v, want %v", name, got, want)
		}
	}
}

func TestOverlapAndDegree2(t *testing.T) {
	h := tiny(t)
	c1, _ := h.EdgeID("c1")
	c2, _ := h.EdgeID("c2")
	c3, _ := h.EdgeID("c3")
	c4, _ := h.EdgeID("c4")
	if got := h.Overlap(c1, c2); got != 2 {
		t.Errorf("Overlap(c1,c2) = %d, want 2", got)
	}
	if got := h.Overlap(c1, c3); got != 1 {
		t.Errorf("Overlap(c1,c3) = %d, want 1", got)
	}
	if got := h.Overlap(c1, c4); got != 0 {
		t.Errorf("Overlap(c1,c4) = %d, want 0", got)
	}
	// c1 overlaps c2, c3, c5 → d2 = 3.
	if got := h.Degree2Edge(c1); got != 3 {
		t.Errorf("Degree2Edge(c1) = %d, want 3", got)
	}
	if got := h.MaxDegree2Edge(); got != 3 {
		t.Errorf("MaxDegree2Edge = %d, want 3", got)
	}
	// b shares edges with a, c (via c1/c2/c5) → d2(b) = 2.
	bID, _ := h.VertexID("b")
	if got := h.Degree2Vertex(bID); got != 2 {
		t.Errorf("Degree2Vertex(b) = %d, want 2", got)
	}
}

func TestNonMaximalEdges(t *testing.T) {
	h := tiny(t)
	nonMax := NonMaximalEdges(h)
	c1, _ := h.EdgeID("c1")
	c2, _ := h.EdgeID("c2")
	c3, _ := h.EdgeID("c3")
	c4, _ := h.EdgeID("c4")
	c5, _ := h.EdgeID("c5")
	want := map[int]bool{c1: false, c2: true, c3: false, c4: false, c5: true}
	for f, w := range want {
		if nonMax[f] != w {
			t.Errorf("NonMaximalEdges[%s] = %v, want %v", h.EdgeName(f), nonMax[f], w)
		}
	}
}

func TestNonMaximalDuplicateTieBreak(t *testing.T) {
	// Two identical edges: exactly the higher-ID copy must be marked.
	b := NewBuilder()
	b.AddEdge("e0", "a", "b")
	b.AddEdge("e1", "a", "b")
	h := b.MustBuild()
	nonMax := NonMaximalEdges(h)
	if nonMax[0] || !nonMax[1] {
		t.Errorf("duplicate tie-break: got %v, want [false true]", nonMax)
	}
}

func TestReduce(t *testing.T) {
	h := tiny(t)
	r, vMap, fMap := h.Reduce()
	if got, want := r.NumEdges(), 3; got != want { // c1, c3, c4 survive
		t.Fatalf("reduced NumEdges = %d, want %d", got, want)
	}
	if !r.IsReduced() {
		t.Error("Reduce output is not reduced")
	}
	// z (isolated) must be dropped.
	if _, ok := r.VertexID("z"); ok {
		t.Error("isolated vertex z survived Reduce")
	}
	if got, want := r.NumVertices(), 5; got != want {
		t.Errorf("reduced NumVertices = %d, want %d", got, want)
	}
	c1old, _ := h.EdgeID("c1")
	if _, ok := fMap[c1old]; !ok {
		t.Error("fMap missing surviving edge c1")
	}
	aOld, _ := h.VertexID("a")
	aNew, ok := vMap[aOld]
	if !ok || r.VertexName(aNew) != "a" {
		t.Error("vMap does not track vertex a correctly")
	}
	if err := r.Validate(); err != nil {
		t.Errorf("reduced Validate: %v", err)
	}
}

func TestSubVertices(t *testing.T) {
	h := tiny(t)
	keep := make([]bool, h.NumVertices())
	for _, name := range []string{"b", "c", "d"} {
		v, _ := h.VertexID(name)
		keep[v] = true
	}
	sub, _, fMap := h.SubVertices(keep)
	if got, want := sub.NumVertices(), 3; got != want {
		t.Fatalf("sub NumVertices = %d, want %d", got, want)
	}
	// c4 = {e} loses all members → dropped; c1 restricted to {b,c}.
	c4old, _ := h.EdgeID("c4")
	if _, ok := fMap[c4old]; ok {
		t.Error("edge c4 should have been dropped")
	}
	c1new, ok := sub.EdgeID("c1")
	if !ok {
		t.Fatal("edge c1 missing from sub-hypergraph")
	}
	if got := sub.EdgeDegree(c1new); got != 2 {
		t.Errorf("restricted deg(c1) = %d, want 2", got)
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("sub Validate: %v", err)
	}
}

func TestDual(t *testing.T) {
	h := tiny(t)
	d := h.Dual()
	if got, want := d.NumVertices(), h.NumEdges(); got != want {
		t.Errorf("dual NumVertices = %d, want %d", got, want)
	}
	if got, want := d.NumEdges(), h.NumVertices(); got != want {
		t.Errorf("dual NumEdges = %d, want %d", got, want)
	}
	if got, want := d.NumPins(), h.NumPins(); got != want {
		t.Errorf("dual NumPins = %d, want %d", got, want)
	}
	// Membership flips: c ∈ c1 in h ⟺ c1 ∈ c in dual.
	c1, _ := d.VertexID("c1")
	cEdge, _ := d.EdgeID("c")
	if !d.EdgeContains(cEdge, c1) {
		t.Error("dual lost the (c, c1) incidence")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("dual Validate: %v", err)
	}
}

func TestDualInvolution(t *testing.T) {
	// Dual of dual has the original incidence structure (for a
	// hypergraph without isolated vertices, which the dual drops from
	// the edge side as empty hyperedges... here all vertices of tiny
	// minus z are covered, so restrict to covered part).
	b := NewBuilder()
	b.AddEdge("c1", "a", "b", "c")
	b.AddEdge("c2", "b", "c")
	h := b.MustBuild()
	dd := h.Dual().Dual()
	if dd.NumVertices() != h.NumVertices() || dd.NumEdges() != h.NumEdges() || dd.NumPins() != h.NumPins() {
		t.Fatalf("double dual shape mismatch: %v vs %v", dd, h)
	}
	for f := 0; f < h.NumEdges(); f++ {
		name := h.EdgeName(f)
		df, ok := dd.EdgeID(name)
		if !ok {
			t.Fatalf("double dual missing edge %q", name)
		}
		if dd.EdgeDegree(df) != h.EdgeDegree(f) {
			t.Errorf("double dual deg(%q) = %d, want %d", name, dd.EdgeDegree(df), h.EdgeDegree(f))
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	h := tiny(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, h); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	assertSameHypergraph(t, h, got)
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"no colon here",
		": members without a name",
		"vertex ",
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("ReadText(%q) succeeded, want error", in)
		}
	}
}

func TestReadTextCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\nc1: a b\n   \n# another\nvertex lonely\n"
	h, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if h.NumVertices() != 3 || h.NumEdges() != 1 {
		t.Errorf("got |V|=%d |F|=%d, want 3, 1", h.NumVertices(), h.NumEdges())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	h := tiny(t)
	data, err := h.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	got, err := UnmarshalJSONHypergraph(data)
	if err != nil {
		t.Fatalf("UnmarshalJSONHypergraph: %v", err)
	}
	assertSameHypergraph(t, h, got)
}

func assertSameHypergraph(t *testing.T, want, got *Hypergraph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() || got.NumPins() != want.NumPins() {
		t.Fatalf("shape mismatch: got %v, want %v", got, want)
	}
	for f := 0; f < want.NumEdges(); f++ {
		name := want.EdgeName(f)
		gf, ok := got.EdgeID(name)
		if !ok {
			t.Fatalf("edge %q missing", name)
		}
		wantMembers := make([]string, 0)
		for _, v := range want.Vertices(f) {
			wantMembers = append(wantMembers, want.VertexName(int(v)))
		}
		gotMembers := make([]string, 0)
		for _, v := range got.Vertices(gf) {
			gotMembers = append(gotMembers, got.VertexName(int(v)))
		}
		sortStrings(wantMembers)
		sortStrings(gotMembers)
		if !reflect.DeepEqual(wantMembers, gotMembers) {
			t.Errorf("edge %q members = %v, want %v", name, gotMembers, wantMembers)
		}
	}
	if err := got.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestClone(t *testing.T) {
	h := tiny(t)
	c := h.Clone()
	assertSameHypergraph(t, h, c)
	// Mutating the clone's internals must not affect the original.
	c.eAdj[0] = 99
	if h.eAdj[0] == 99 {
		t.Error("Clone shares eAdj storage with the original")
	}
}

func TestMapHypergraphRoundTrip(t *testing.T) {
	h := tiny(t)
	m := NewMapHypergraph(h)
	if m.NumVertices() != h.NumVertices() || m.NumEdges() != h.NumEdges() {
		t.Fatalf("MapHypergraph shape mismatch")
	}
	rebuilt, _, _ := m.Build()
	if rebuilt.NumPins() != h.NumPins() {
		t.Errorf("round-trip pins = %d, want %d", rebuilt.NumPins(), h.NumPins())
	}
	if err := rebuilt.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMapHypergraphDelete(t *testing.T) {
	h := tiny(t)
	m := NewMapHypergraph(h)
	c, _ := h.VertexID("c")
	m.DeleteVertex(c)
	for f := 0; f < h.NumEdges(); f++ {
		if m.EdgeContains(f, c) {
			t.Errorf("edge %d still contains deleted vertex", f)
		}
	}
	c1, _ := h.EdgeID("c1")
	if got := m.EdgeDegree(c1); got != 2 {
		t.Errorf("after DeleteVertex, deg(c1) = %d, want 2", got)
	}
	m.DeleteEdge(c1)
	a, _ := h.VertexID("a")
	if got := m.VertexDegree(a); got != 0 {
		t.Errorf("after DeleteEdge, deg(a) = %d, want 0", got)
	}
}

// randomHypergraph builds a random hypergraph for property tests.
func randomHypergraph(seed uint64, nv, ne, maxSize int) *Hypergraph {
	rng := xrand.New(seed)
	b := NewBuilder()
	for v := 0; v < nv; v++ {
		b.AddVertex(dualName("v", v))
	}
	for f := 0; f < ne; f++ {
		size := 1 + rng.Intn(maxSize)
		members := make([]int32, 0, size)
		for i := 0; i < size; i++ {
			members = append(members, int32(rng.Intn(nv)))
		}
		b.AddEdgeIDs(dualName("f", f), members)
	}
	return b.MustBuild()
}

func TestPropertyValidateRandom(t *testing.T) {
	prop := func(seed uint64) bool {
		h := randomHypergraph(seed, 2+int(seed%29), 1+int(seed%17), 1+int(seed%7))
		return h.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDegreeSumsEqual(t *testing.T) {
	// Σ d(v) == Σ d(f) == |E| (handshake identity from the paper).
	prop := func(seed uint64) bool {
		h := randomHypergraph(seed, 3+int(seed%31), 1+int(seed%23), 1+int(seed%9))
		sv, sf := 0, 0
		for v := 0; v < h.NumVertices(); v++ {
			sv += h.VertexDegree(v)
		}
		for f := 0; f < h.NumEdges(); f++ {
			sf += h.EdgeDegree(f)
		}
		return sv == h.NumPins() && sf == h.NumPins()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyReduceIdempotent(t *testing.T) {
	prop := func(seed uint64) bool {
		h := randomHypergraph(seed, 3+int(seed%13), 1+int(seed%19), 1+int(seed%5))
		r1, _, _ := h.Reduce()
		if !r1.IsReduced() {
			return false
		}
		r2, _, _ := r1.Reduce()
		return r2.NumVertices() == r1.NumVertices() && r2.NumEdges() == r1.NumEdges() && r2.NumPins() == r1.NumPins()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDualPreservesPins(t *testing.T) {
	prop := func(seed uint64) bool {
		h := randomHypergraph(seed, 3+int(seed%13), 1+int(seed%19), 1+int(seed%5))
		return h.Dual().NumPins() == h.NumPins()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTextRoundTripRandom(t *testing.T) {
	prop := func(seed uint64) bool {
		h := randomHypergraph(seed, 3+int(seed%13), 1+int(seed%19), 1+int(seed%5))
		var buf bytes.Buffer
		if err := WriteText(&buf, h); err != nil {
			return false
		}
		got, err := ReadText(&buf)
		if err != nil {
			return false
		}
		return got.NumVertices() == h.NumVertices() && got.NumEdges() == h.NumEdges() && got.NumPins() == h.NumPins()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOverlapSymmetric(t *testing.T) {
	prop := func(seed uint64) bool {
		h := randomHypergraph(seed, 3+int(seed%13), 2+int(seed%19), 1+int(seed%5))
		rng := xrand.New(seed ^ 0xabcdef)
		for i := 0; i < 10; i++ {
			f := rng.Intn(h.NumEdges())
			g := rng.Intn(h.NumEdges())
			if h.Overlap(f, g) != h.Overlap(g, f) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSortedEdgeIDsByDegree(t *testing.T) {
	h := tiny(t)
	ids := h.SortedEdgeIDsByDegree()
	for i := 1; i < len(ids); i++ {
		if h.EdgeDegree(ids[i-1]) > h.EdgeDegree(ids[i]) {
			t.Fatalf("ids not sorted by degree: %v", ids)
		}
	}
}

func TestFromEdgeSets(t *testing.T) {
	h, err := FromEdgeSets(4, [][]int32{{0, 1}, {1, 2, 3}})
	if err != nil {
		t.Fatalf("FromEdgeSets: %v", err)
	}
	if h.NumVertices() != 4 || h.NumEdges() != 2 || h.NumPins() != 5 {
		t.Errorf("unexpected shape: %v", h)
	}
	if _, err := FromEdgeSets(2, [][]int32{{0, 5}}); err == nil {
		t.Error("FromEdgeSets accepted out-of-range member")
	}
}
