package hypergraph

import (
	"fmt"
	"sort"
)

// MapHypergraph is a mutable map-of-sets hypergraph representation.  It
// exists for two reasons: as the natural intermediate form for
// incremental editing (delete a vertex, delete a hyperedge) and as the
// baseline in the storage-layout ablation (BenchmarkAblationStorage*):
// the CSR Hypergraph is what the paper's space argument calls for, and
// the benchmarks quantify how much the pointer-heavy representation
// costs on traversal-dominated algorithms.
type MapHypergraph struct {
	// VertexEdges[v] is the set of hyperedges containing v.
	VertexEdges map[int]map[int]struct{}
	// EdgeVertices[f] is the member set of hyperedge f.
	EdgeVertices map[int]map[int]struct{}
}

// NewMapHypergraph converts a CSR hypergraph into the mutable form.
// IDs are preserved.
func NewMapHypergraph(h *Hypergraph) *MapHypergraph {
	m := &MapHypergraph{
		VertexEdges:  make(map[int]map[int]struct{}, h.NumVertices()),
		EdgeVertices: make(map[int]map[int]struct{}, h.NumEdges()),
	}
	for v := 0; v < h.NumVertices(); v++ {
		set := make(map[int]struct{}, h.VertexDegree(v))
		for _, f := range h.Edges(v) {
			set[int(f)] = struct{}{}
		}
		m.VertexEdges[v] = set
	}
	for f := 0; f < h.NumEdges(); f++ {
		set := make(map[int]struct{}, h.EdgeDegree(f))
		for _, v := range h.Vertices(f) {
			set[int(v)] = struct{}{}
		}
		m.EdgeVertices[f] = set
	}
	return m
}

// NumVertices returns the number of live vertices.
func (m *MapHypergraph) NumVertices() int { return len(m.VertexEdges) }

// NumEdges returns the number of live hyperedges.
func (m *MapHypergraph) NumEdges() int { return len(m.EdgeVertices) }

// VertexDegree returns the degree of a live vertex (0 if absent).
func (m *MapHypergraph) VertexDegree(v int) int { return len(m.VertexEdges[v]) }

// EdgeDegree returns the cardinality of a live hyperedge (0 if absent).
func (m *MapHypergraph) EdgeDegree(f int) int { return len(m.EdgeVertices[f]) }

// DeleteVertex removes v from every hyperedge containing it and then
// removes v itself.  Hyperedges are left in place even if they become
// empty; callers managing reduction semantics handle that.
func (m *MapHypergraph) DeleteVertex(v int) {
	for f := range m.VertexEdges[v] {
		delete(m.EdgeVertices[f], v)
	}
	delete(m.VertexEdges, v)
}

// DeleteEdge removes hyperedge f from the adjacency of its members and
// then removes f itself.
func (m *MapHypergraph) DeleteEdge(f int) {
	for v := range m.EdgeVertices[f] {
		delete(m.VertexEdges[v], f)
	}
	delete(m.EdgeVertices, f)
}

// EdgeContains reports membership in O(1).
func (m *MapHypergraph) EdgeContains(f, v int) bool {
	_, ok := m.EdgeVertices[f][v]
	return ok
}

// Build freezes the mutable form back into a CSR Hypergraph, densely
// renumbered.  The returned maps give old→new IDs.
func (m *MapHypergraph) Build() (*Hypergraph, map[int]int, map[int]int) {
	vIDs := make([]int, 0, len(m.VertexEdges))
	for v := range m.VertexEdges {
		vIDs = append(vIDs, v)
	}
	sort.Ints(vIDs)
	fIDs := make([]int, 0, len(m.EdgeVertices))
	for f := range m.EdgeVertices {
		fIDs = append(fIDs, f)
	}
	sort.Ints(fIDs)

	b := NewBuilder()
	vMap := make(map[int]int, len(vIDs))
	for _, v := range vIDs {
		vMap[v] = b.AddVertex(fmt.Sprintf("v%d", v))
	}
	fMap := make(map[int]int, len(fIDs))
	for _, f := range fIDs {
		members := make([]int32, 0, len(m.EdgeVertices[f]))
		for v := range m.EdgeVertices[f] {
			members = append(members, int32(vMap[v]))
		}
		fMap[f] = b.AddEdgeIDs(fmt.Sprintf("f%d", f), members)
	}
	h, err := b.Build()
	if err != nil {
		//hyperplexvet:ignore nopanic generated names are unique by construction, so a build failure is an internal bug
		panic("hypergraph: MapHypergraph.Build: " + err.Error())
	}
	return h, vMap, fMap
}
