package store

import "unsafe"

// nativeLittleEndian reports whether the running architecture stores
// integers little-endian, in which case a mapped int32 section can be
// viewed in place.  Big-endian hosts always take the os.ReadAt loader,
// which decodes the little-endian file format explicitly.
var nativeLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// int32View reinterprets a mapped little-endian section as []int32 in
// place.  Callers guarantee b is 4-byte aligned (sections are page-
// aligned) and that the host is little-endian.
func int32View(b []byte) []int32 {
	if len(b) == 0 {
		return []int32{}
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}
