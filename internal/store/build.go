package store

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"

	"hyperplex/internal/csr"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/mmio"
	"hyperplex/internal/run"
)

// fpBuild fires on every checkpoint of the streaming store builder.
var fpBuild = failpoint.Register("store.build")

// buildCheckEvery bounds how many records or pins may pass between
// cancellation/budget checkpoints in the builder's own loops (the
// source scanners carry their own per-line checkpoints).
const buildCheckEvery = 256

// nameRAMBytes estimates the long-lived per-name RAM cost beyond the
// name bytes themselves: a string header, a slice slot, a map entry
// and a degree counter.  Charged against MaxAlloc — the builder's RAM
// is O(|V|+|F|), never O(pins).
const nameRAMBytes = 56

// Source is a re-openable input for the streaming builder.  The
// builder reads it twice (count pass, fill pass), so Open must return
// a fresh reader over the same bytes each time; if the content changes
// between passes the build fails with an "input changed" error rather
// than writing a corrupt store.
type Source struct {
	// Format selects the parser: "text" (the hypergraph text format)
	// or "mtx" (Matrix Market coordinate).
	Format string
	Open   func() (io.ReadCloser, error)
}

// FileSource is the Source reading path in the given format.
func FileSource(format, path string) Source {
	return Source{Format: format, Open: func() (io.ReadCloser, error) { return os.Open(path) }}
}

// BuildFile streams src into a store file at dst with the default
// context.
func BuildFile(dst string, src Source) error {
	return BuildFileCtx(context.Background(), dst, src)
}

// BuildFileCtx constructs an on-disk CSR store at dst in two streaming
// passes over src, honoring cancellation, deadline and any run.Budget
// attached to ctx.  Resident memory is O(|V|+|F|) plus fixed buffers;
// the pin arrays are written straight to disk (scattered through a
// read-write mapping where the platform provides one), so an instance
// whose pins exceed a run.MaxAlloc budget still builds.  The write is
// atomic: dst appears only complete, via fsync-and-rename.
func BuildFileCtx(ctx context.Context, dst string, src Source) error {
	meter := run.MeterFrom(ctx)
	if err := run.Tick(ctx, meter, 0); err != nil {
		return err
	}
	switch src.Format {
	case "text":
		return buildText(ctx, meter, dst, src)
	case "mtx":
		return buildMTX(ctx, meter, dst, src)
	default:
		return fmt.Errorf("store: build %s: unknown source format %q (want \"text\" or \"mtx\")", dst, src.Format)
	}
}

// buildTicker carries the builder's interval checkpoint state: pending
// work units accumulate and are charged (with a failpoint probe) every
// buildCheckEvery.
type buildTicker struct {
	pending int64
}

// tickEvery counts one work unit and checkpoints at the interval.
func (b *buildTicker) tickEvery(ctx context.Context, meter *run.Meter) error {
	if b.pending++; b.pending >= buildCheckEvery {
		return b.flush(ctx, meter)
	}
	return nil
}

// flush charges the pending work now.
func (b *buildTicker) flush(ctx context.Context, meter *run.Meter) error {
	if err := failpoint.Inject(fpBuild); err != nil {
		return err
	}
	if err := run.Tick(ctx, meter, b.pending); err != nil {
		return err
	}
	b.pending = 0
	return nil
}

// pinFile is a writable int32 array region inside a temp file: the
// scatter target for the transposed pin array.  Where the platform
// provides it (linux, little-endian) the region is served by a shared
// read-write mapping; everywhere else by pread/pwrite with explicit
// little-endian coding.  base must be page-aligned.
type pinFile struct {
	f      *os.File
	base   int64
	n      int64   // length in int32 entries
	view   []int32 // in-place view when mapped
	mapped []byte  // whole-file mapping backing view
	buf    []byte  // code scratch for the unmapped path
}

// newPinFile views entries [base, base+4n) of f, whose total size is
// fileSize.  Mapping failure silently degrades to pread/pwrite.
func newPinFile(f *os.File, fileSize, base, n int64) *pinFile {
	p := &pinFile{f: f, base: base, n: n, buf: make([]byte, 1<<16)}
	if n > 0 && mmapSupported && nativeLittleEndian {
		if b, err := mapFileRW(f, fileSize); err == nil {
			p.mapped = b
			p.view = int32View(b[base : base+4*n])
		}
	}
	return p
}

// put stores v at entry slot.  Out-of-range slots are an input
// inconsistency, reported rather than written.
func (p *pinFile) put(slot int64, v int32) error {
	if slot < 0 || slot >= p.n {
		return fmt.Errorf("pin slot %d out of range [0,%d)", slot, p.n)
	}
	if p.view != nil {
		p.view[slot] = v
		return nil
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(v))
	_, err := p.f.WriteAt(b[:], p.base+4*slot)
	return err
}

// read fills dst from entries [start, start+len(dst)), checkpointing
// per buffer chunk on the unmapped path.
func (p *pinFile) read(ctx context.Context, meter *run.Meter, start int64, dst []int32) error {
	if p.view != nil {
		copy(dst, p.view[start:start+int64(len(dst))])
		return nil
	}
	for len(dst) > 0 {
		if err := run.Tick(ctx, meter, 1); err != nil {
			return err
		}
		nv := min(len(dst), len(p.buf)/4)
		if _, err := p.f.ReadAt(p.buf[:4*nv], p.base+4*start); err != nil {
			return err
		}
		for i := 0; i < nv; i++ {
			dst[i] = int32(binary.LittleEndian.Uint32(p.buf[4*i:]))
		}
		dst = dst[nv:]
		start += int64(nv)
	}
	return nil
}

// write stores src at entries [start, start+len(src)), checkpointing
// per buffer chunk on the unmapped path.
func (p *pinFile) write(ctx context.Context, meter *run.Meter, start int64, src []int32) error {
	if p.view != nil {
		copy(p.view[start:start+int64(len(src))], src)
		return nil
	}
	for len(src) > 0 {
		if err := run.Tick(ctx, meter, 1); err != nil {
			return err
		}
		nv := min(len(src), len(p.buf)/4)
		for i := 0; i < nv; i++ {
			binary.LittleEndian.PutUint32(p.buf[4*i:], uint32(src[i]))
		}
		if _, err := p.f.WriteAt(p.buf[:4*nv], p.base+4*start); err != nil {
			return err
		}
		src = src[nv:]
		start += int64(nv)
	}
	return nil
}

// close releases the mapping (the file itself belongs to the caller).
// Idempotent.
func (p *pinFile) close() error {
	if p.mapped == nil {
		return nil
	}
	b := p.mapped
	p.mapped, p.view = nil, nil
	return unmapFile(b)
}

// sectionSink writes sections of the final file at their layout
// offsets (in any order) and records their checksums, reusing one
// write buffer across sections.
type sectionSink struct {
	hdr  *header
	tmp  *os.File
	path string
	bw   *bufio.Writer
	cw   *crcWriter
}

// sinkRAMBytes is the fixed buffer cost of a sectionSink, charged
// against MaxAlloc by the builders.
const sinkRAMBytes = 1<<18 + 1<<16

func newSectionSink(hdr *header, tmp *os.File, path string) *sectionSink {
	bw := bufio.NewWriterSize(nil, 1<<18)
	return &sectionSink{hdr: hdr, tmp: tmp, path: path, bw: bw, cw: newCRCWriter(bw)}
}

// begin points the sink at section i.
func (s *sectionSink) begin(i int) {
	s.bw.Reset(io.NewOffsetWriter(s.tmp, s.hdr.sec[i].off))
	s.cw.reset()
}

// finish flushes section i and checks the byte count against the
// layout.
func (s *sectionSink) finish(i int) error {
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("store: build %s section %d: %w", s.path, i, err)
	}
	if s.cw.n != s.hdr.sec[i].size {
		return fmt.Errorf("store: build %s section %d: wrote %d bytes, want %d", s.path, i, s.cw.n, s.hdr.sec[i].size)
	}
	s.hdr.sec[i].crc = s.cw.crc
	return nil
}

// ints writes an entire int32 section in one go.
func (s *sectionSink) ints(ctx context.Context, meter *run.Meter, i int, vals []int32) error {
	if s.hdr.sec[i].size == 0 {
		return nil
	}
	s.begin(i)
	if err := s.cw.writeInt32s(ctx, meter, vals); err != nil {
		return err
	}
	return s.finish(i)
}

// blob writes an entire name-blob section in one go.
func (s *sectionSink) blob(ctx context.Context, meter *run.Meter, i int, names []string) error {
	if s.hdr.sec[i].size == 0 {
		return nil
	}
	s.begin(i)
	if err := s.cw.writeNameBlob(ctx, meter, names); err != nil {
		return err
	}
	return s.finish(i)
}

// fileCRC checksums [off, off+size) of f in budget-checkpointed
// chunks, used for the scattered (non-streamed) VAdj section.
func fileCRC(ctx context.Context, meter *run.Meter, f *os.File, off, size int64, buf []byte) (uint32, error) {
	var crc uint32
	for size > 0 {
		if err := failpoint.Inject(fpBuild); err != nil {
			return 0, err
		}
		if err := run.Tick(ctx, meter, 1); err != nil {
			return 0, err
		}
		n := min(size, int64(len(buf)))
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return 0, err
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:n])
		off += n
		size -= n
	}
	return crc, nil
}

// changed formats the error for a source whose second pass disagrees
// with the first.
func changed(dst, format string, a ...any) error {
	return fmt.Errorf("store: build %s: input changed between passes ("+format+")", append([]any{dst}, a...)...)
}

// buildText streams a hypergraph text source into a store file.  Pass
// 1 resolves names and counts degrees (the only RAM the build keeps);
// pass 2 writes the sorted, deduplicated edge-side pins sequentially
// while scattering the vertex-side transpose, exactly reproducing the
// CSR that ReadText + csr.FromH would build in RAM.
func buildText(ctx context.Context, meter *run.Meter, dst string, src Source) (err error) {
	bt := &buildTicker{}

	vIndex := make(map[string]int32)
	var vNames []string
	var vDeg []int32
	var eNames []string
	var eDeg []int32
	eIndex := make(map[string]int32)
	var scratch []int32
	scratchCap := 0
	pins := int64(0)

	addVertex := func(name string) (int32, error) {
		if v, ok := vIndex[name]; ok {
			return v, nil
		}
		if int64(len(vNames)) >= maxInt32 {
			return 0, fmt.Errorf("store: build %s: vertex count overflows the int32 index space", dst)
		}
		if aerr := meter.Alloc(int64(len(name)) + nameRAMBytes); aerr != nil {
			return 0, aerr
		}
		v := csr.MustInt32(len(vNames))
		vNames = append(vNames, name)
		vDeg = append(vDeg, 0)
		vIndex[name] = v
		return v, nil
	}
	// gather resolves one record's members into scratch; dedup sorts
	// and collapses them, mirroring Builder.AddEdgeIDs.
	dedup := func() []int32 {
		slices.Sort(scratch)
		return slices.Compact(scratch)
	}

	// Pass 1: count.
	rc, err := src.Open()
	if err != nil {
		return fmt.Errorf("store: build %s: open source: %w", dst, err)
	}
	scanErr := hypergraph.ScanTextCtx(ctx, rc, hypergraph.TextEvents{
		Vertex: func(name string) error {
			if terr := bt.tickEvery(ctx, meter); terr != nil {
				return terr
			}
			_, verr := addVertex(name)
			return verr
		},
		Edge: func(name string, members []string) error {
			f := len(eNames)
			if int64(f) >= maxInt32 {
				return fmt.Errorf("store: build %s: hyperedge count overflows the int32 index space", dst)
			}
			if name != "" {
				if prev, dup := eIndex[name]; dup {
					return fmt.Errorf("hypergraph: duplicate hyperedge name %q (edges %d and %d)", name, prev, f)
				}
				eIndex[name] = int32(f)
			}
			if aerr := meter.Alloc(int64(len(name)) + nameRAMBytes); aerr != nil {
				return aerr
			}
			scratch = scratch[:0]
			for _, m := range members {
				if terr := bt.tickEvery(ctx, meter); terr != nil {
					return terr
				}
				v, verr := addVertex(m)
				if verr != nil {
					return verr
				}
				scratch = append(scratch, v)
			}
			if c := cap(scratch); c > scratchCap {
				if aerr := meter.Alloc(int64(4 * (c - scratchCap))); aerr != nil {
					return aerr
				}
				scratchCap = c
			}
			uniq := dedup()
			for _, v := range uniq {
				vDeg[v]++
			}
			pins += int64(len(uniq))
			if pins > maxInt32 {
				return fmt.Errorf("store: build %s: %d pins overflow the int32 index space", dst, pins)
			}
			nu := len(uniq)
			eNames = append(eNames, name)
			eDeg = append(eDeg, int32(nu))
			return nil
		},
	})
	cerr := rc.Close()
	if scanErr != nil {
		return scanErr
	}
	if cerr != nil {
		return fmt.Errorf("store: build %s: close source: %w", dst, cerr)
	}

	numV, numE := int64(len(vNames)), int64(len(eNames))
	if aerr := meter.Alloc(4 * (3*numV + 2*numE + 2)); aerr != nil {
		return aerr
	}
	vOff := make([]int32, numV+1)
	for v := range vDeg {
		vOff[v+1] = vOff[v] + vDeg[v]
	}
	eOff := make([]int32, numE+1)
	for f := range eDeg {
		eOff[f+1] = eOff[f] + eDeg[f]
	}
	vNameOff, vBlob, err := nameOffsets("vertex", vNames)
	if err != nil {
		return err
	}
	eNameOff, eBlob, err := nameOffsets("edge", eNames)
	if err != nil {
		return err
	}
	hdr := computeLayout(numV, numE, pins, false, vBlob, eBlob)

	tmp, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: build %s: create temp: %w", dst, err)
	}
	finalized := false
	defer func() {
		if !finalized {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := tmp.Truncate(hdr.fileSize()); err != nil {
		return fmt.Errorf("store: build %s: size temp: %w", dst, err)
	}
	if aerr := meter.Alloc(sinkRAMBytes); aerr != nil {
		return aerr
	}
	sink := newSectionSink(&hdr, tmp, dst)
	if err := sink.ints(ctx, meter, secVOff, vOff); err != nil {
		return err
	}
	if err := sink.ints(ctx, meter, secEOff, eOff); err != nil {
		return err
	}
	if err := sink.ints(ctx, meter, secVNameOff, vNameOff); err != nil {
		return err
	}
	if err := sink.blob(ctx, meter, secVNameBlob, vNames); err != nil {
		return err
	}
	if err := sink.ints(ctx, meter, secENameOff, eNameOff); err != nil {
		return err
	}
	if err := sink.blob(ctx, meter, secENameBlob, eNames); err != nil {
		return err
	}

	// Pass 2: fill.  EAdj streams through the sink; VAdj is scattered
	// through the pin file at each vertex's cursor.
	if aerr := meter.Alloc(4*numV + 1<<16); aerr != nil {
		return aerr
	}
	vadj := newPinFile(tmp, hdr.fileSize(), hdr.sec[secVAdj].off, pins)
	defer vadj.close()
	vCursor := make([]int32, numV)
	copy(vCursor, vOff[:numV])
	sink.begin(secEAdj)
	rc2, err := src.Open()
	if err != nil {
		return fmt.Errorf("store: build %s: reopen source: %w", dst, err)
	}
	f := int64(0)
	scanErr = hypergraph.ScanTextCtx(ctx, rc2, hypergraph.TextEvents{
		Vertex: func(name string) error {
			if terr := bt.tickEvery(ctx, meter); terr != nil {
				return terr
			}
			if _, ok := vIndex[name]; !ok {
				return changed(dst, "unknown vertex %q", name)
			}
			return nil
		},
		Edge: func(name string, members []string) error {
			if f >= numE {
				return changed(dst, "extra hyperedge %q", name)
			}
			scratch = scratch[:0]
			for _, m := range members {
				if terr := bt.tickEvery(ctx, meter); terr != nil {
					return terr
				}
				v, ok := vIndex[m]
				if !ok {
					return changed(dst, "unknown vertex %q", m)
				}
				scratch = append(scratch, v)
			}
			uniq := dedup()
			if int64(len(uniq)) != int64(eDeg[f]) {
				return changed(dst, "hyperedge %d has degree %d, counted %d", f, len(uniq), eDeg[f])
			}
			if werr := sink.cw.writeInt32s(ctx, meter, uniq); werr != nil {
				return werr
			}
			for _, v := range uniq {
				if terr := bt.tickEvery(ctx, meter); terr != nil {
					return terr
				}
				if perr := vadj.put(int64(vCursor[v]), int32(f)); perr != nil {
					return fmt.Errorf("store: build %s: scatter: %w", dst, perr)
				}
				vCursor[v]++
			}
			f++
			return nil
		},
	})
	cerr = rc2.Close()
	if scanErr != nil {
		return scanErr
	}
	if cerr != nil {
		return fmt.Errorf("store: build %s: close source: %w", dst, cerr)
	}
	if f != numE {
		return changed(dst, "%d hyperedges, counted %d", f, numE)
	}
	if err := sink.finish(secEAdj); err != nil {
		return err
	}
	for v := range vCursor {
		if vCursor[v] != vOff[v+1] {
			return changed(dst, "vertex %d degree shifted", v)
		}
	}
	if err := vadj.close(); err != nil {
		return fmt.Errorf("store: build %s: unmap: %w", dst, err)
	}
	crcV, err := fileCRC(ctx, meter, tmp, hdr.sec[secVAdj].off, hdr.sec[secVAdj].size, sink.cw.buf)
	if err != nil {
		return err
	}
	hdr.sec[secVAdj].crc = crcV
	if err := finalizeAtomic(tmp, sink.bw, &hdr, dst); err != nil {
		return err
	}
	finalized = true
	return nil
}

// buildMTX streams a Matrix Market coordinate source into a store
// file: rows become vertices, columns hyperedges, exactly as
// mmio.ToHypergraph converts in RAM (duplicates collapse, empty
// columns stay as empty hyperedges), but the built store carries no
// names.  The raw column-grouped pins go to a scratch file first, are
// compacted (sort + dedup) in place, then transposed into the final
// file; RAM stays O(rows+cols) plus the largest raw column.
func buildMTX(ctx context.Context, meter *run.Meter, dst string, src Source) (err error) {
	bt := &buildTicker{}

	// Pass 1: dimensions and raw per-column counts (mirrored entries
	// of a symmetric file included).
	var eDegRaw []int32
	var numV, numE int64
	sized := false
	rawPins := int64(0)
	rc, err := src.Open()
	if err != nil {
		return fmt.Errorf("store: build %s: open source: %w", dst, err)
	}
	_, scanErr := mmio.ScanCtx(ctx, rc, mmio.MatrixEvents{
		Size: func(rows, cols, nnz int) error {
			if int64(rows) >= maxInt32 || int64(cols) >= maxInt32 {
				return fmt.Errorf("store: build %s: %d x %d dimensions overflow the int32 index space", dst, rows, cols)
			}
			numV, numE, sized = int64(rows), int64(cols), true
			if aerr := meter.Alloc(4 * numE); aerr != nil {
				return aerr
			}
			eDegRaw = make([]int32, cols)
			return nil
		},
		Entry: func(i, j int32, v float64) error {
			if rawPins >= maxInt32 {
				return fmt.Errorf("store: build %s: pin count overflows the int32 index space", dst)
			}
			eDegRaw[j]++
			rawPins++
			return nil
		},
	})
	cerr := rc.Close()
	if scanErr != nil {
		return scanErr
	}
	if cerr != nil {
		return fmt.Errorf("store: build %s: close source: %w", dst, cerr)
	}
	if !sized {
		return fmt.Errorf("store: build %s: source delivered no size line", dst)
	}

	if aerr := meter.Alloc(4*(2*numE+1) + 1<<16); aerr != nil { // offsets, cursors, pinFile code buffer
		return aerr
	}
	eOffRaw := make([]int32, numE+1)
	maxColRaw := int64(0)
	for j := range eDegRaw {
		eOffRaw[j+1] = eOffRaw[j] + eDegRaw[j]
		if int64(eDegRaw[j]) > maxColRaw {
			maxColRaw = int64(eDegRaw[j])
		}
	}
	cursorRaw := make([]int32, numE)
	copy(cursorRaw, eOffRaw[:numE])

	// Scratch file: raw pins grouped by column.
	scr, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".scratch-*")
	if err != nil {
		return fmt.Errorf("store: build %s: create scratch: %w", dst, err)
	}
	defer func() {
		scr.Close()
		os.Remove(scr.Name())
	}()
	if err := scr.Truncate(4 * rawPins); err != nil {
		return fmt.Errorf("store: build %s: size scratch: %w", dst, err)
	}
	raw := newPinFile(scr, 4*rawPins, 0, rawPins)
	defer raw.close()

	// Pass 2: scatter raw row indices by column.
	rc2, err := src.Open()
	if err != nil {
		return fmt.Errorf("store: build %s: reopen source: %w", dst, err)
	}
	_, scanErr = mmio.ScanCtx(ctx, rc2, mmio.MatrixEvents{
		Size: func(rows, cols, nnz int) error {
			if int64(rows) != numV || int64(cols) != numE {
				return changed(dst, "size %dx%d, counted %dx%d", rows, cols, numV, numE)
			}
			return nil
		},
		Entry: func(i, j int32, v float64) error {
			if terr := bt.tickEvery(ctx, meter); terr != nil {
				return terr
			}
			slot := cursorRaw[j]
			if slot >= eOffRaw[j+1] {
				return changed(dst, "column %d gained entries", j)
			}
			cursorRaw[j]++
			if perr := raw.put(int64(slot), i); perr != nil {
				return fmt.Errorf("store: build %s: scratch scatter: %w", dst, perr)
			}
			return nil
		},
	})
	cerr = rc2.Close()
	if scanErr != nil {
		return scanErr
	}
	if cerr != nil {
		return fmt.Errorf("store: build %s: close source: %w", dst, cerr)
	}
	for j := range cursorRaw {
		if cursorRaw[j] != eOffRaw[j+1] {
			return changed(dst, "column %d lost entries", j)
		}
	}

	// Compact each column in place: sort, collapse duplicates, pack
	// left.  The write cursor never passes the read cursor because
	// columns only shrink.
	if aerr := meter.Alloc(4 * (maxColRaw + numE + numV)); aerr != nil {
		return aerr
	}
	rowBuf := make([]int32, maxColRaw)
	eDeg := make([]int32, numE)
	vDeg := make([]int32, numV)
	write := int64(0)
	for j := int64(0); j < numE; j++ {
		if terr := bt.tickEvery(ctx, meter); terr != nil {
			return terr
		}
		col := rowBuf[:eOffRaw[j+1]-eOffRaw[j]]
		if rerr := raw.read(ctx, meter, int64(eOffRaw[j]), col); rerr != nil {
			return fmt.Errorf("store: build %s: scratch read: %w", dst, rerr)
		}
		slices.Sort(col)
		uniq := slices.Compact(col)
		for _, v := range uniq {
			vDeg[v]++
		}
		if werr := raw.write(ctx, meter, write, uniq); werr != nil {
			return fmt.Errorf("store: build %s: scratch write: %w", dst, werr)
		}
		nu := len(uniq)
		eDeg[j] = int32(nu)
		write += int64(nu)
	}
	pins := write

	if aerr := meter.Alloc(4*(2*numV+numE+2) + 1<<16); aerr != nil { // offsets, cursors, vadj pinFile code buffer
		return aerr
	}
	vOff := make([]int32, numV+1)
	for v := range vDeg {
		vOff[v+1] = vOff[v] + vDeg[v]
	}
	eOff := make([]int32, numE+1)
	for j := range eDeg {
		eOff[j+1] = eOff[j] + eDeg[j]
	}
	vCursor := make([]int32, numV)
	copy(vCursor, vOff[:numV])
	hdr := computeLayout(numV, numE, pins, false, -1, -1)

	tmp, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: build %s: create temp: %w", dst, err)
	}
	finalized := false
	defer func() {
		if !finalized {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := tmp.Truncate(hdr.fileSize()); err != nil {
		return fmt.Errorf("store: build %s: size temp: %w", dst, err)
	}
	if aerr := meter.Alloc(sinkRAMBytes); aerr != nil {
		return aerr
	}
	sink := newSectionSink(&hdr, tmp, dst)
	if err := sink.ints(ctx, meter, secVOff, vOff); err != nil {
		return err
	}
	if err := sink.ints(ctx, meter, secEOff, eOff); err != nil {
		return err
	}

	// Transpose: stream the compacted columns into EAdj while
	// scattering the vertex side.
	vadj := newPinFile(tmp, hdr.fileSize(), hdr.sec[secVAdj].off, pins)
	defer vadj.close()
	sink.begin(secEAdj)
	for j := int64(0); j < numE; j++ {
		if terr := bt.tickEvery(ctx, meter); terr != nil {
			return terr
		}
		col := rowBuf[:eDeg[j]]
		if rerr := raw.read(ctx, meter, int64(eOff[j]), col); rerr != nil {
			return fmt.Errorf("store: build %s: scratch read: %w", dst, rerr)
		}
		if werr := sink.cw.writeInt32s(ctx, meter, col); werr != nil {
			return werr
		}
		for _, v := range col {
			if terr := bt.tickEvery(ctx, meter); terr != nil {
				return terr
			}
			if perr := vadj.put(int64(vCursor[v]), int32(j)); perr != nil {
				return fmt.Errorf("store: build %s: scatter: %w", dst, perr)
			}
			vCursor[v]++
		}
	}
	if err := sink.finish(secEAdj); err != nil {
		return err
	}
	for v := range vCursor {
		if vCursor[v] != vOff[v+1] {
			return fmt.Errorf("store: build %s: vertex %d transpose cursor off", dst, v)
		}
	}
	if err := vadj.close(); err != nil {
		return fmt.Errorf("store: build %s: unmap: %w", dst, err)
	}
	crcV, err := fileCRC(ctx, meter, tmp, hdr.sec[secVAdj].off, hdr.sec[secVAdj].size, sink.cw.buf)
	if err != nil {
		return err
	}
	hdr.sec[secVAdj].crc = crcV
	if err := finalizeAtomic(tmp, sink.bw, &hdr, dst); err != nil {
		return err
	}
	finalized = true
	return nil
}
