//go:build !linux

package store

import (
	"errors"
	"os"
)

// mmapSupported reports whether this build can memory-map store files.
// Non-linux builds always use the portable os.ReadAt loader.
const mmapSupported = false

func mapFile(*os.File, int64) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func unmapFile([]byte) error { return nil }

func mapFileRW(*os.File, int64) ([]byte, error) {
	return nil, errors.ErrUnsupported
}
