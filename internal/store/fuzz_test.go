package store_test

import (
	"os"
	"path/filepath"
	"slices"
	"testing"

	"hyperplex/internal/csr"
	"hyperplex/internal/gen"
	"hyperplex/internal/store"
	"hyperplex/internal/xrand"
)

// fuzzSeedBytes builds the byte image of a small valid store so the
// fuzzer starts from reachable file structure rather than pure noise.
func fuzzSeedBytes(t testing.TB) []byte {
	t.Helper()
	h := gen.RandomHypergraph(13, 9, 4, xrand.New(0xF022))
	path := filepath.Join(t.TempDir(), "seed.store")
	if err := store.WriteH(path, h); err != nil {
		t.Fatalf("WriteH: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	return b
}

// FuzzStoreRoundTrip feeds arbitrary bytes to Open.  Any input must
// either be rejected with an error or open into a store whose arrays
// pass csr.Validate and survive an exact re-write round trip; no input
// may panic, hang, or allocate past the header-declared sizes.
func FuzzStoreRoundTrip(f *testing.F) {
	seed := fuzzSeedBytes(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:4096])
	truncHeader := slices.Clone(seed[:244])
	f.Add(truncHeader)
	flipped := slices.Clone(seed)
	flipped[4096] ^= 0x20
	f.Add(flipped)
	f.Add([]byte("HYPLXST1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "in.store")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		st, err := store.Open(path, store.Options{NoMmap: true})
		if err != nil {
			return // rejected, fine
		}
		defer st.Close()
		c := st.CSR()
		// Open validated the structure; a second pass must agree.
		if err := c.Validate(); err != nil {
			t.Fatalf("opened store fails validation: %v", err)
		}
		vNames, eNames := namesOf(st, c)
		out := filepath.Join(dir, "out.store")
		if err := store.Write(out, c, vNames, eNames); err != nil {
			t.Fatalf("re-write of opened store: %v", err)
		}
		st2, err := store.Open(out, store.Options{NoMmap: true})
		if err != nil {
			t.Fatalf("re-open of re-written store: %v", err)
		}
		defer st2.Close()
		if !sameArrays(st2.CSR(), c) {
			t.Fatal("re-written store decodes to different arrays")
		}
		for i := int32(0); i < int32(c.NumVertices()); i++ {
			if st2.VertexName(i) != st.VertexName(i) {
				t.Fatalf("vertex %d name changed across round trip", i)
			}
		}
		for i := int32(0); i < int32(c.NumEdges()); i++ {
			if st2.EdgeName(i) != st.EdgeName(i) {
				t.Fatalf("edge %d name changed across round trip", i)
			}
		}
	})
}

// sameArrays compares the six CSR arrays exactly.
func sameArrays(a, b *csr.CSR) bool {
	return slices.Equal(a.VOff, b.VOff) && slices.Equal(a.VAdj, b.VAdj) &&
		slices.Equal(a.EOff, b.EOff) && slices.Equal(a.EAdj, b.EAdj) &&
		slices.Equal(a.VertexID, b.VertexID) && slices.Equal(a.EdgeID, b.EdgeID)
}

// namesOf extracts the name tables of an opened store, or nil for a
// side with no name section (empty names throughout).
func namesOf(st *store.File, c *csr.CSR) (vNames, eNames []string) {
	anyV, anyE := false, false
	for i := int32(0); i < int32(c.NumVertices()); i++ {
		if st.VertexName(i) != "" {
			anyV = true
			break
		}
	}
	for i := int32(0); i < int32(c.NumEdges()); i++ {
		if st.EdgeName(i) != "" {
			anyE = true
			break
		}
	}
	if anyV {
		vNames = make([]string, c.NumVertices())
		for i := range vNames {
			vNames[i] = st.VertexName(int32(i))
		}
	}
	if anyE {
		eNames = make([]string, c.NumEdges())
		for i := range eNames {
			eNames[i] = st.EdgeName(int32(i))
		}
	}
	return vNames, eNames
}
