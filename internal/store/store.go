// Package store is the storage seam under the CSR substrate: a
// Backend presents the four CSR incidence arrays (plus optional ID
// maps and names) to the kernels without saying where the bytes live.
// Two implementations exist — Mem wraps the in-RAM arena csr.FromH has
// always produced, and File serves a page-aligned flat file, memory-
// mapped where the platform supports it (linux, little-endian) with a
// portable os.ReadAt loader everywhere else.  BuildFile constructs the
// file form directly from a text or MatrixMarket source in two
// streaming passes, so an instance whose pin arrays exceed RAM (or a
// run.MaxAlloc budget) never has to exist as an in-memory Hypergraph.
package store

import (
	"context"
	"fmt"
	"hash/crc32"
	"os"

	"hyperplex/internal/csr"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// fpOpen fires on every checkpoint of the file-open verification scan.
var fpOpen = failpoint.Register("store.open")

// verifyChunk bounds how many section bytes are checksummed between
// cancellation/budget checkpoints in OpenCtx.
const verifyChunk = 1 << 20

// Backend is the storage seam: kernels read the hypergraph through a
// CSR view and its names without knowing whether the arrays live in
// RAM or in a mapped file.  Every slice reachable through it is
// read-only, and (for a File backend) only valid until Close.
type Backend interface {
	// CSR returns the flat incidence view.  The returned value and its
	// arrays are shared, not copied.
	CSR() *csr.CSR
	// VertexName returns the name of vertex v ("" if unnamed).
	VertexName(v int32) string
	// EdgeName returns the name of hyperedge f ("" if unnamed).
	EdgeName(f int32) string
	// H returns the builder-layer view of the same hypergraph.  The
	// pin arrays are aliased from the backend, so for a mapped file
	// only the offsets, names and name indexes (O(|V|+|F|)) become
	// RAM-resident.
	H() (*hypergraph.Hypergraph, error)
	// Close releases the backend's resources.  For a memory-mapped
	// File every array obtained through the backend becomes invalid.
	Close() error
}

// Mem is the in-RAM backend: the arena csr.FromH carves over an
// ordinary Hypergraph, behind the seam interface.  Close is a no-op.
type Mem struct {
	h *hypergraph.Hypergraph
	c *csr.CSR
}

// NewMem wraps h in the in-RAM backend.
func NewMem(h *hypergraph.Hypergraph) *Mem {
	return &Mem{h: h, c: csr.FromH(h)}
}

func (m *Mem) CSR() *csr.CSR { return m.c }

func (m *Mem) VertexName(v int32) string { return m.h.VertexName(int(v)) }

func (m *Mem) EdgeName(f int32) string { return m.h.EdgeName(int(f)) }

func (m *Mem) H() (*hypergraph.Hypergraph, error) { return m.h, nil }

func (m *Mem) Close() error { return nil }

// Options configures Open.
type Options struct {
	// NoMmap forces the portable os.ReadAt loader even where mmap is
	// available.  The arrays are then ordinary heap memory and stay
	// valid after Close — dataset loading uses this so a loaded
	// instance does not pin a file descriptor.
	NoMmap bool
	// SkipVerify skips the section checksums and the structural CSR
	// validation, for files this process just wrote or otherwise
	// trusts.  The header and the name offset arrays are always
	// validated, so even a skipped verify cannot read out of bounds.
	SkipVerify bool
}

// File is the flat-file backend.  See format.go for the layout.
type File struct {
	path   string
	f      *os.File
	mapped []byte // whole-file mapping; nil for the ReadAt loader

	c                    csr.CSR
	vNameOff, eNameOff   []int32
	vNameBlob, eNameBlob []byte

	h      *hypergraph.Hypergraph
	closed bool
}

// Open opens a store file with the default context.
func Open(path string, opts Options) (*File, error) {
	return OpenCtx(context.Background(), path, opts)
}

// OpenCtx opens a store file: header validation first (allocation-
// capped — nothing proportional to the declared counts is allocated or
// mapped until the header proves the sections consistent with the file
// size), then the arrays are mapped (linux, little-endian hosts) or
// loaded via os.ReadAt, then — unless opts.SkipVerify — every section
// checksum and the full csr.Validate structural check run, with
// cancellation/budget checkpoints every verifyChunk bytes.  Step unit:
// one verified chunk.  On error nothing stays mapped or open.
func OpenCtx(ctx context.Context, path string, opts Options) (f *File, err error) {
	meter := run.MeterFrom(ctx)
	if err := run.Tick(ctx, meter, 0); err != nil {
		return nil, err
	}
	osf, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st := &File{path: path, f: osf}
	opened := false
	// The deferred close also runs when an armed failpoint panics
	// mid-verify, so a failed open never leaks the mapping or the fd.
	defer func() {
		if !opened {
			st.Close()
		}
	}()
	info, err := osf.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	size := info.Size()
	if size < headerSize {
		return nil, fmt.Errorf("store: %s: truncated: %d bytes is smaller than the %d-byte header", path, size, headerSize)
	}
	hbuf := make([]byte, headerSize)
	if _, err := osf.ReadAt(hbuf, 0); err != nil {
		return nil, fmt.Errorf("store: %s: read header: %w", path, err)
	}
	hdr, err := decodeHeader(hbuf, size)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}

	if !opts.NoMmap && mmapSupported && nativeLittleEndian {
		// Portable fallback on mapping failure: a filesystem that
		// cannot map (or an exhausted address space) serves via ReadAt.
		if b, merr := mapFile(osf, size); merr == nil {
			st.mapped = b
		}
	}

	sectionRaw := func(i int) ([]byte, error) {
		s := hdr.sec[i]
		if s.size == 0 {
			return nil, nil
		}
		if st.mapped != nil {
			return st.mapped[s.off : s.off+s.size], nil
		}
		b := make([]byte, s.size)
		if _, rerr := osf.ReadAt(b, s.off); rerr != nil {
			return nil, fmt.Errorf("store: %s: read section %d: %w", path, i, rerr)
		}
		return b, nil
	}
	var raw [numSections][]byte
	for i := range raw {
		if err := run.Tick(ctx, meter, 0); err != nil {
			return nil, err
		}
		if raw[i], err = sectionRaw(i); err != nil {
			return nil, err
		}
	}

	if !opts.SkipVerify {
		for i, b := range raw {
			if err := run.Tick(ctx, meter, 0); err != nil {
				return nil, err
			}
			var got uint32
			for len(b) > 0 {
				if err := failpoint.Inject(fpOpen); err != nil {
					return nil, err
				}
				if err := run.Tick(ctx, meter, 1); err != nil {
					return nil, err
				}
				n := min(len(b), verifyChunk)
				got = crc32.Update(got, crc32.IEEETable, b[:n])
				b = b[n:]
			}
			if got != hdr.sec[i].crc {
				return nil, fmt.Errorf("store: %s: section %d checksum mismatch (file corrupt?)", path, i)
			}
		}
	}

	// Int32 sections: viewed in place when mapped (little-endian by
	// construction of the mmap gate), decoded otherwise.
	asInt32 := func(b []byte) []int32 {
		if st.mapped != nil {
			return int32View(b)
		}
		out := make([]int32, len(b)/4)
		for i := range out {
			out[i] = int32(uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24)
		}
		return out
	}
	st.c = csr.CSR{
		VOff: asInt32(raw[secVOff]),
		VAdj: asInt32(raw[secVAdj]),
		EOff: asInt32(raw[secEOff]),
		EAdj: asInt32(raw[secEAdj]),
	}
	if hdr.sec[secVertexID].size != 0 || hdr.sec[secEdgeID].size != 0 {
		st.c.VertexID = asInt32(raw[secVertexID])
		st.c.EdgeID = asInt32(raw[secEdgeID])
	}
	if hdr.sec[secVNameOff].size != 0 {
		st.vNameOff = asInt32(raw[secVNameOff])
		st.vNameBlob = raw[secVNameBlob]
		if err := validateNameOffsets("vertex", st.vNameOff, len(st.vNameBlob)); err != nil {
			return nil, fmt.Errorf("%w (%s)", err, path)
		}
	}
	if hdr.sec[secENameOff].size != 0 {
		st.eNameOff = asInt32(raw[secENameOff])
		st.eNameBlob = raw[secENameBlob]
		if err := validateNameOffsets("edge", st.eNameOff, len(st.eNameBlob)); err != nil {
			return nil, fmt.Errorf("%w (%s)", err, path)
		}
	}

	if !opts.SkipVerify {
		// The structural check walks every pin once per direction.
		if err := run.Tick(ctx, meter, hdr.pins/verifyChunk+1); err != nil {
			return nil, err
		}
		if err := st.c.Validate(); err != nil {
			return nil, fmt.Errorf("store: %s: %w", path, err)
		}
	}
	opened = true
	return st, nil
}

// validateNameOffsets pins the name offset array to the blob it
// indexes, so the name accessors can slice without bounds surprises
// even when the caller skipped the checksum verify.
func validateNameOffsets(kind string, off []int32, blobLen int) error {
	if off[0] != 0 {
		return fmt.Errorf("store: %s name offsets must start at 0", kind)
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("store: %s name offsets not monotone at %d", kind, i)
		}
	}
	if int(off[len(off)-1]) != blobLen {
		return fmt.Errorf("store: %s name offsets end at %d, want the %d-byte blob", kind, off[len(off)-1], blobLen)
	}
	return nil
}

// CSR returns the store's incidence view; for a mapped file the pin
// arrays point straight into the mapping.
func (s *File) CSR() *csr.CSR { return &s.c }

// VertexName returns the name of vertex v ("" if the file carries no
// vertex names).
func (s *File) VertexName(v int32) string {
	if s.vNameOff == nil {
		return ""
	}
	return string(s.vNameBlob[s.vNameOff[v]:s.vNameOff[v+1]])
}

// EdgeName returns the name of hyperedge f ("" if the file carries no
// edge names).
func (s *File) EdgeName(f int32) string {
	if s.eNameOff == nil {
		return ""
	}
	return string(s.eNameBlob[s.eNameOff[f]:s.eNameOff[f+1]])
}

// names materializes one side's name slice, or nil when absent.
func names(off []int32, blob []byte) []string {
	if off == nil {
		return nil
	}
	out := make([]string, len(off)-1)
	for i := range out {
		out[i] = string(blob[off[i]:off[i+1]])
	}
	return out
}

// H returns the builder-layer view of the stored hypergraph.  The pin
// arrays stay backed by the store (the mapping, for a mapped file);
// offsets, names and name indexes become RAM-resident, O(|V|+|F|).
// The result is cached and shares the store's lifetime: do not use it
// after Close unless the store was opened with NoMmap.
func (s *File) H() (*hypergraph.Hypergraph, error) {
	if s.h != nil {
		return s.h, nil
	}
	h, err := hypergraph.FromCSRArrays(s.c.VOff, s.c.VAdj, s.c.EOff, s.c.EAdj,
		names(s.vNameOff, s.vNameBlob), names(s.eNameOff, s.eNameBlob))
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", s.path, err)
	}
	s.h = h
	return h, nil
}

// Close unmaps (when mapped) and closes the file.  Idempotent.  After
// Close, arrays obtained from a mapped store must not be touched; a
// NoMmap store's arrays are ordinary heap memory and stay valid.
func (s *File) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.mapped != nil {
		if err := unmapFile(s.mapped); err != nil && first == nil {
			first = err
		}
		s.mapped = nil
	}
	if s.f != nil {
		if err := s.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
