package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The store file is one 4096-byte header page followed by up to ten
// page-aligned little-endian sections, laid out in section-index order:
//
//	offset 0                                            page-aligned
//	┌──────────────┬───────┬───────┬───────┬───────┬─ ─ ─┬──────────┐
//	│ header page  │ VOff  │ VAdj  │ EOff  │ EAdj  │ IDs │  names   │
//	└──────────────┴───────┴───────┴───────┴───────┴─ ─ ─┴──────────┘
//
//	header page (little-endian):
//	  [0:8)    magic "HYPLXST1"
//	  [8:12)   format version (currently 1)
//	  [12:16)  flags (must be zero)
//	  [16:24)  numV   uint64
//	  [24:32)  numE   uint64
//	  [32:40)  pins   uint64
//	  [40:240) section table: 10 × { off uint64, size uint64, crc32 }
//	  [240:244) CRC32 (IEEE) of bytes [0:240)
//	  [244:4096) zero padding
//
// The four CSR sections are mandatory; the ID-map and name sections
// are optional (size zero = absent).  Int32 sections hold little-
// endian int32 values; name sections are an (n+1)-entry int32 offset
// array plus a concatenated UTF-8 blob.  Page alignment means a
// memory-mapped section can be viewed as []int32 in place on a
// little-endian host; every other host decodes via os.ReadAt.
const (
	storeMagic    = "HYPLXST1"
	formatVersion = 1
	pageSize      = 4096
	headerSize    = pageSize

	numSections  = 10
	secVOff      = 0
	secVAdj      = 1
	secEOff      = 2
	secEAdj      = 3
	secVertexID  = 4
	secEdgeID    = 5
	secVNameOff  = 6
	secVNameBlob = 7
	secENameOff  = 8
	secENameBlob = 9

	sectionTableOff = 40
	headerCRCOff    = sectionTableOff + numSections*20

	maxInt32 = 1<<31 - 1
)

// section locates one section within the file.  Size zero means the
// section is absent (and the offset is then ignored).
type section struct {
	off  int64
	size int64
	crc  uint32
}

// header is the decoded header page.
type header struct {
	numV, numE, pins int64
	sec              [numSections]section
}

func pagePad(n int64) int64 {
	if rem := n % pageSize; rem != 0 {
		return n + pageSize - rem
	}
	return n
}

// computeLayout assigns section offsets for the given counts: every
// non-empty section is page-aligned and they follow each other in
// section-index order.  CRCs are filled in by the writer.  A negative
// blob length means that side carries no names at all (no offset
// section either).
func computeLayout(numV, numE, pins int64, hasIDs bool, vNameBlob, eNameBlob int64) header {
	h := header{numV: numV, numE: numE, pins: pins}
	h.sec[secVOff].size = 4 * (numV + 1)
	h.sec[secVAdj].size = 4 * pins
	h.sec[secEOff].size = 4 * (numE + 1)
	h.sec[secEAdj].size = 4 * pins
	if hasIDs {
		h.sec[secVertexID].size = 4 * numV
		h.sec[secEdgeID].size = 4 * numE
	}
	if vNameBlob >= 0 {
		h.sec[secVNameOff].size = 4 * (numV + 1)
		h.sec[secVNameBlob].size = vNameBlob
	}
	if eNameBlob >= 0 {
		h.sec[secENameOff].size = 4 * (numE + 1)
		h.sec[secENameBlob].size = eNameBlob
	}
	cur := int64(headerSize)
	for i := range h.sec {
		if h.sec[i].size == 0 {
			continue
		}
		h.sec[i].off = cur
		cur = pagePad(cur + h.sec[i].size)
	}
	return h
}

// fileSize returns the total size of a file with this layout.
func (h *header) fileSize() int64 {
	end := int64(headerSize)
	for i := range h.sec {
		if h.sec[i].size != 0 {
			end = pagePad(h.sec[i].off + h.sec[i].size)
		}
	}
	return end
}

// encodeHeader serializes the header page.
func encodeHeader(h *header) []byte {
	b := make([]byte, headerSize)
	copy(b, storeMagic)
	binary.LittleEndian.PutUint32(b[8:], formatVersion)
	binary.LittleEndian.PutUint32(b[12:], 0) // flags
	binary.LittleEndian.PutUint64(b[16:], uint64(h.numV))
	binary.LittleEndian.PutUint64(b[24:], uint64(h.numE))
	binary.LittleEndian.PutUint64(b[32:], uint64(h.pins))
	for i := range h.sec {
		p := sectionTableOff + i*20
		binary.LittleEndian.PutUint64(b[p:], uint64(h.sec[i].off))
		binary.LittleEndian.PutUint64(b[p+8:], uint64(h.sec[i].size))
		binary.LittleEndian.PutUint32(b[p+16:], h.sec[i].crc)
	}
	binary.LittleEndian.PutUint32(b[headerCRCOff:], crc32.ChecksumIEEE(b[:headerCRCOff]))
	return b
}

// decodeHeader parses and fully validates a header page against the
// file size, before anything proportional to the declared counts is
// allocated or mapped: magic, version, flags, the int32 index-space
// caps on every count, per-section size formulas, page alignment, and
// monotone non-overlapping section placement.  A file that passes
// cannot make the loader allocate or map beyond its own (count-
// consistent) sections.
func decodeHeader(b []byte, fileSize int64) (*header, error) {
	if string(b[:8]) != storeMagic {
		return nil, fmt.Errorf("store: bad magic %q (not a hypergraph store file)", b[:8])
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != formatVersion {
		return nil, fmt.Errorf("store: unsupported format version %d (this build reads version %d)", v, formatVersion)
	}
	if fl := binary.LittleEndian.Uint32(b[12:]); fl != 0 {
		return nil, fmt.Errorf("store: unknown flags %#x", fl)
	}
	if got := crc32.ChecksumIEEE(b[:headerCRCOff]); got != binary.LittleEndian.Uint32(b[headerCRCOff:]) {
		return nil, fmt.Errorf("store: header checksum mismatch")
	}
	h := &header{
		numV: int64(binary.LittleEndian.Uint64(b[16:])),
		numE: int64(binary.LittleEndian.Uint64(b[24:])),
		pins: int64(binary.LittleEndian.Uint64(b[32:])),
	}
	// The CSR index space is int32: counts beyond it mean the file
	// cannot be represented and must fail loudly here, not truncate.
	if h.numV < 0 || h.numV >= maxInt32 {
		return nil, fmt.Errorf("store: %d vertices overflow the int32 index space", uint64(h.numV))
	}
	if h.numE < 0 || h.numE >= maxInt32 {
		return nil, fmt.Errorf("store: %d hyperedges overflow the int32 index space", uint64(h.numE))
	}
	if h.pins < 0 || h.pins > maxInt32 {
		return nil, fmt.Errorf("store: %d pins overflow the int32 index space", uint64(h.pins))
	}
	for i := range h.sec {
		p := sectionTableOff + i*20
		h.sec[i].off = int64(binary.LittleEndian.Uint64(b[p:]))
		h.sec[i].size = int64(binary.LittleEndian.Uint64(b[p+8:]))
		h.sec[i].crc = binary.LittleEndian.Uint32(b[p+16:])
	}
	want := func(i int, allowed ...int64) error {
		for _, a := range allowed {
			if h.sec[i].size == a {
				return nil
			}
		}
		return fmt.Errorf("store: section %d has size %d, inconsistent with the header counts", i, h.sec[i].size)
	}
	if err := want(secVOff, 4*(h.numV+1)); err != nil {
		return nil, err
	}
	if err := want(secVAdj, 4*h.pins); err != nil {
		return nil, err
	}
	if err := want(secEOff, 4*(h.numE+1)); err != nil {
		return nil, err
	}
	if err := want(secEAdj, 4*h.pins); err != nil {
		return nil, err
	}
	if err := want(secVertexID, 0, 4*h.numV); err != nil {
		return nil, err
	}
	if err := want(secEdgeID, 0, 4*h.numE); err != nil {
		return nil, err
	}
	if err := want(secVNameOff, 0, 4*(h.numV+1)); err != nil {
		return nil, err
	}
	if err := want(secENameOff, 0, 4*(h.numE+1)); err != nil {
		return nil, err
	}
	// ID maps come in pairs, as do a side's name offsets and blob.
	if (h.sec[secVertexID].size == 0) != (h.sec[secEdgeID].size == 0) && h.numV > 0 && h.numE > 0 {
		return nil, fmt.Errorf("store: ID map sections must be both present or both absent")
	}
	if h.sec[secVNameOff].size == 0 && h.sec[secVNameBlob].size != 0 {
		return nil, fmt.Errorf("store: vertex name blob without a vertex name offset section")
	}
	if h.sec[secENameOff].size == 0 && h.sec[secENameBlob].size != 0 {
		return nil, fmt.Errorf("store: edge name blob without an edge name offset section")
	}
	if h.sec[secVNameBlob].size > maxInt32 || h.sec[secENameBlob].size > maxInt32 {
		return nil, fmt.Errorf("store: name blob overflows the int32 offset space")
	}
	prevEnd := int64(headerSize)
	for i := range h.sec {
		s := h.sec[i]
		if s.size == 0 {
			continue
		}
		if s.off%pageSize != 0 {
			return nil, fmt.Errorf("store: section %d offset %d is not page-aligned", i, s.off)
		}
		if s.off < prevEnd {
			return nil, fmt.Errorf("store: section %d at offset %d overlaps the previous section", i, s.off)
		}
		if s.off > fileSize || s.size > fileSize-s.off {
			return nil, fmt.Errorf("store: section %d (offset %d, size %d) extends past the %d-byte file", i, s.off, s.size, fileSize)
		}
		prevEnd = s.off + s.size
	}
	return h, nil
}
