package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"hyperplex/internal/check"
	"hyperplex/internal/csr"
	"hyperplex/internal/gen"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/mmio"
	"hyperplex/internal/run"
	"hyperplex/internal/xrand"
)

// textOf renders h in the text format, the byte-exact fingerprint the
// round-trip tests compare.
func textOf(t *testing.T, h *hypergraph.Hypergraph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := hypergraph.WriteText(&buf, h); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.Bytes()
}

func sameCSR(t *testing.T, label string, got, want *csr.CSR) {
	t.Helper()
	if !slices.Equal(got.VOff, want.VOff) || !slices.Equal(got.VAdj, want.VAdj) ||
		!slices.Equal(got.EOff, want.EOff) || !slices.Equal(got.EAdj, want.EAdj) {
		t.Fatalf("%s: CSR arrays differ from in-RAM build", label)
	}
	if !slices.Equal(got.VertexID, want.VertexID) || !slices.Equal(got.EdgeID, want.EdgeID) {
		t.Fatalf("%s: ID maps differ from in-RAM build", label)
	}
}

// TestRoundTripSweep writes every sweep instance to a store file and
// reads it back through both loaders, checking the CSR arrays, the
// names, and the builder-layer view against the original.
func TestRoundTripSweep(t *testing.T) {
	for i, h := range check.Instances(40, 0xC04E21) {
		path := filepath.Join(t.TempDir(), "g.store")
		if err := WriteH(path, h); err != nil {
			t.Fatalf("instance %d: WriteH: %v", i, err)
		}
		want := csr.FromH(h)
		wantText := textOf(t, h)
		for _, opts := range []Options{{}, {NoMmap: true}, {NoMmap: true, SkipVerify: true}} {
			st, err := Open(path, opts)
			if err != nil {
				t.Fatalf("instance %d: Open(%+v): %v", i, opts, err)
			}
			label := fmt.Sprintf("instance %d (%+v)", i, opts)
			sameCSR(t, label, st.CSR(), want)
			for v := 0; v < h.NumVertices(); v++ {
				if got := st.VertexName(int32(v)); got != h.VertexName(v) {
					t.Fatalf("%s: vertex %d name %q, want %q", label, v, got, h.VertexName(v))
				}
			}
			for f := 0; f < h.NumEdges(); f++ {
				if got := st.EdgeName(int32(f)); got != h.EdgeName(f) {
					t.Fatalf("%s: edge %d name %q, want %q", label, f, got, h.EdgeName(f))
				}
			}
			h2, err := st.H()
			if err != nil {
				t.Fatalf("%s: H: %v", label, err)
			}
			if !bytes.Equal(textOf(t, h2), wantText) {
				t.Fatalf("%s: round-tripped hypergraph differs", label)
			}
			if err := st.Close(); err != nil {
				t.Fatalf("%s: Close: %v", label, err)
			}
		}
	}
}

// TestNoMmapArraysSurviveClose pins the documented contract dataset
// loading relies on: a NoMmap store's arrays stay valid after Close.
func TestNoMmapArraysSurviveClose(t *testing.T) {
	h := gen.RandomHypergraph(50, 30, 5, xrand.New(7))
	path := filepath.Join(t.TempDir(), "g.store")
	if err := WriteH(path, h); err != nil {
		t.Fatalf("WriteH: %v", err)
	}
	st, err := Open(path, Options{NoMmap: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	h2, err := st.H()
	if err != nil {
		t.Fatalf("H: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !bytes.Equal(textOf(t, h2), textOf(t, h)) {
		t.Fatal("NoMmap arrays changed after Close")
	}
}

// TestIDMapRoundTrip stores a CSR carrying local→global ID maps.
func TestIDMapRoundTrip(t *testing.T) {
	h := gen.RandomHypergraph(20, 15, 4, xrand.New(3))
	c := csr.FromH(h)
	c.VertexID = make([]int32, h.NumVertices())
	for i := range c.VertexID {
		c.VertexID[i] = int32(2*i + 1)
	}
	c.EdgeID = make([]int32, h.NumEdges())
	for i := range c.EdgeID {
		c.EdgeID[i] = int32(3 * i)
	}
	path := filepath.Join(t.TempDir(), "g.store")
	if err := Write(path, c, nil, nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	for _, opts := range []Options{{}, {NoMmap: true}} {
		st, err := Open(path, opts)
		if err != nil {
			t.Fatalf("Open(%+v): %v", opts, err)
		}
		sameCSR(t, fmt.Sprintf("opts %+v", opts), st.CSR(), c)
		if st.VertexName(0) != "" || st.EdgeName(0) != "" {
			t.Fatalf("opts %+v: nameless store returned names", opts)
		}
		st.Close()
	}
}

// corruptCase mutates a valid store file and names the error Open must
// return.
type corruptCase struct {
	name   string
	mutate func(b []byte) []byte
	want   string
}

// fixHeaderCRC recomputes the header checksum after a deliberate
// header mutation, so the test reaches the targeted validation.
func fixHeaderCRC(b []byte) {
	binary.LittleEndian.PutUint32(b[headerCRCOff:], crc32.ChecksumIEEE(b[:headerCRCOff]))
}

// TestOpenRejectsCorruptFiles drives Open through every failure edge
// of the format: truncation, flipped bytes in header and sections,
// version and flag skew, and counts beyond the int32 index space.
func TestOpenRejectsCorruptFiles(t *testing.T) {
	h := gen.RandomHypergraph(60, 40, 5, xrand.New(11))
	dir := t.TempDir()
	path := filepath.Join(dir, "g.store")
	if err := WriteH(path, h); err != nil {
		t.Fatalf("WriteH: %v", err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []corruptCase{
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"short header", func(b []byte) []byte { return b[:100] }, "truncated"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"version skew", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 2)
			fixHeaderCRC(b)
			return b
		}, "unsupported format version 2"},
		{"unknown flags", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 0x8000)
			fixHeaderCRC(b)
			return b
		}, "unknown flags"},
		{"header bit flip", func(b []byte) []byte { b[20] ^= 1; return b }, "header checksum mismatch"},
		{"vertex count overflow", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 1<<40)
			fixHeaderCRC(b)
			return b
		}, "overflow the int32 index space"},
		{"pin count overflow", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32:], 1<<33)
			fixHeaderCRC(b)
			return b
		}, "overflow the int32 index space"},
		{"section bit flip", func(b []byte) []byte { b[headerSize+3] ^= 0x40; return b }, "checksum mismatch"},
		{"chopped section", func(b []byte) []byte { return b[:headerSize+10] }, "extends past"},
		{"misaligned section", func(b []byte) []byte {
			p := sectionTableOff // section 0 offset field
			binary.LittleEndian.PutUint64(b[p:], uint64(headerSize+4))
			fixHeaderCRC(b)
			return b
		}, "not page-aligned"},
		{"inconsistent section size", func(b []byte) []byte {
			p := sectionTableOff + 8
			binary.LittleEndian.PutUint64(b[p:], uint64(binary.LittleEndian.Uint64(b[p:]))+4)
			fixHeaderCRC(b)
			return b
		}, "inconsistent with the header counts"},
	}
	for _, tc := range cases {
		for _, opts := range []Options{{}, {NoMmap: true}} {
			p := filepath.Join(dir, "bad.store")
			if err := os.WriteFile(p, tc.mutate(slices.Clone(orig)), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Open(p, opts)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%s (%+v): Open err = %v, want substring %q", tc.name, opts, err, tc.want)
			}
		}
	}
	// SkipVerify must still reject everything except payload bit flips.
	for _, tc := range cases {
		if tc.name == "section bit flip" {
			continue
		}
		p := filepath.Join(dir, "bad.store")
		if err := os.WriteFile(p, tc.mutate(slices.Clone(orig)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p, Options{SkipVerify: true}); err == nil {
			t.Fatalf("%s: SkipVerify Open accepted a structurally invalid file", tc.name)
		}
	}
}

// TestWriteRejectsBadInput covers the writer-side validations.
func TestWriteRejectsBadInput(t *testing.T) {
	h := gen.RandomHypergraph(10, 5, 3, xrand.New(1))
	c := csr.FromH(h)
	dir := t.TempDir()
	if err := Write(filepath.Join(dir, "a.store"), c, make([]string, 3), nil); err == nil ||
		!strings.Contains(err.Error(), "vertex names") {
		t.Fatalf("short vertex names: err = %v", err)
	}
	if err := Write(filepath.Join(dir, "b.store"), c, nil, make([]string, 99)); err == nil ||
		!strings.Contains(err.Error(), "edge names") {
		t.Fatalf("short edge names: err = %v", err)
	}
	bad := *c
	bad.VertexID = []int32{1}
	if err := Write(filepath.Join(dir, "c.store"), &bad, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "ID maps") {
		t.Fatalf("partial ID maps: err = %v", err)
	}
}

// memSource serves the same in-memory bytes on every Open.
func memSource(format string, data []byte) Source {
	return Source{Format: format, Open: func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(data)), nil
	}}
}

// TestBuildTextDifferential pins the streaming text builder to the
// in-RAM path: for every sweep instance the built store must equal
// ReadText + csr.FromH exactly — arrays, names, and text round-trip.
func TestBuildTextDifferential(t *testing.T) {
	for i, h := range check.Instances(40, 0xC04E22) {
		data := textOf(t, h)
		want, err := hypergraph.ReadText(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("instance %d: ReadText: %v", i, err)
		}
		path := filepath.Join(t.TempDir(), "g.store")
		if err := BuildFile(path, memSource("text", data)); err != nil {
			t.Fatalf("instance %d: BuildFile: %v", i, err)
		}
		st, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("instance %d: Open: %v", i, err)
		}
		sameCSR(t, fmt.Sprintf("instance %d", i), st.CSR(), csr.FromH(want))
		h2, err := st.H()
		if err != nil {
			t.Fatalf("instance %d: H: %v", i, err)
		}
		if !bytes.Equal(textOf(t, h2), textOf(t, want)) {
			t.Fatalf("instance %d: built store text differs from ReadText", i)
		}
		st.Close()
	}
}

// TestBuildMTXDifferential pins the streaming MatrixMarket builder to
// mmio.Read + ToHypergraph: identical structure (the built store
// carries no names).
func TestBuildMTXDifferential(t *testing.T) {
	rng := xrand.New(0xC04E23)
	var inputs [][]byte
	for k := 0; k < 8; k++ {
		h := gen.RandomHypergraph(10+int(rng.Intn(50)), 5+int(rng.Intn(40)), 1+int(rng.Intn(6)), rng)
		var buf bytes.Buffer
		if err := mmio.Write(&buf, mmio.FromHypergraph(h)); err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, buf.Bytes())
	}
	inputs = append(inputs,
		[]byte("%%MatrixMarket matrix coordinate real symmetric\n4 4 5\n1 1 1.0\n2 1 1.0\n3 2 2.0\n4 3 1.0\n4 4 1.0\n"),
		[]byte("%%MatrixMarket matrix coordinate pattern general\n3 4 5\n1 1\n2 1\n2 1\n3 3\n1 3\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n5 3 0\n"),
	)
	for i, data := range inputs {
		m, err := mmio.Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("input %d: mmio.Read: %v", i, err)
		}
		wantH, err := mmio.ToHypergraph(m)
		if err != nil {
			t.Fatalf("input %d: ToHypergraph: %v", i, err)
		}
		want := csr.FromH(wantH)
		path := filepath.Join(t.TempDir(), "g.store")
		if err := BuildFile(path, memSource("mtx", data)); err != nil {
			t.Fatalf("input %d: BuildFile: %v", i, err)
		}
		st, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("input %d: Open: %v", i, err)
		}
		got := st.CSR()
		if !slices.Equal(got.VOff, want.VOff) || !slices.Equal(got.VAdj, want.VAdj) ||
			!slices.Equal(got.EOff, want.EOff) || !slices.Equal(got.EAdj, want.EAdj) {
			t.Fatalf("input %d: built store structure differs from mmio.Read+ToHypergraph", i)
		}
		st.Close()
	}
}

// flipFlopSource returns different bytes on the first and second Open,
// simulating a source mutated mid-build.
type flipFlopSource struct {
	first, second []byte
	opens         int
}

func (s *flipFlopSource) source(format string) Source {
	return Source{Format: format, Open: func() (io.ReadCloser, error) {
		s.opens++
		if s.opens == 1 {
			return io.NopCloser(bytes.NewReader(s.first)), nil
		}
		return io.NopCloser(bytes.NewReader(s.second)), nil
	}}
}

// TestBuildDetectsChangedInput: a source that changes between the two
// passes must fail the build, and dst must not appear.
func TestBuildDetectsChangedInput(t *testing.T) {
	cases := []struct{ name, format, first, second string }{
		{"text new vertex", "text", "e0: a b\ne1: b c\n", "e0: a b\ne1: b d\n"},
		{"text degree shift", "text", "e0: a b c\n", "e0: a b\nvertex c\n"},
		{"text extra edge", "text", "e0: a b\n", "e0: a b\ne1: a\n"},
		{"mtx resized", "mtx",
			"%%MatrixMarket matrix coordinate pattern general\n3 2 2\n1 1\n2 2\n",
			"%%MatrixMarket matrix coordinate pattern general\n4 2 2\n1 1\n2 2\n"},
		{"mtx moved entry", "mtx",
			"%%MatrixMarket matrix coordinate pattern general\n3 2 2\n1 1\n2 2\n",
			"%%MatrixMarket matrix coordinate pattern general\n3 2 2\n1 2\n2 2\n"},
	}
	for _, tc := range cases {
		dir := t.TempDir()
		dst := filepath.Join(dir, "g.store")
		ff := &flipFlopSource{first: []byte(tc.first), second: []byte(tc.second)}
		err := BuildFile(dst, ff.source(tc.format))
		if err == nil || !strings.Contains(err.Error(), "input changed between passes") {
			t.Fatalf("%s: err = %v, want input-changed", tc.name, err)
		}
		if _, serr := os.Stat(dst); !errors.Is(serr, os.ErrNotExist) {
			t.Fatalf("%s: destination exists after failed build", tc.name)
		}
		ents, _ := os.ReadDir(dir)
		if len(ents) != 0 {
			t.Fatalf("%s: temp litter after failed build: %v", tc.name, ents)
		}
	}
}

// budgetedText synthesizes a text instance whose pin arrays dominate
// its vertex/edge counts: 2000 hyperedges of 150 distinct members over
// 200 vertices = 300k pins, 2.4 MB of pin arrays (and ~1.4 MB of
// source text, which the in-RAM reader charges byte for byte).
func budgetedText() []byte {
	var buf bytes.Buffer
	for f := 0; f < 2000; f++ {
		fmt.Fprintf(&buf, "e%d:", f)
		for k := 0; k < 150; k++ {
			fmt.Fprintf(&buf, " v%d", (f*7+k)%200)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestBuildUnderAllocBudget is the out-of-core acceptance check: the
// streaming build completes under a run.MaxAlloc budget smaller than
// the pin arrays, the in-RAM reader provably cannot load the same
// input under that budget, and the resulting store decomposes to the
// same answer as the in-RAM pipeline.
func TestBuildUnderAllocBudget(t *testing.T) {
	data := budgetedText()
	budget := run.Budget{MaxAlloc: 1 << 20} // 1 MB < 2.4 MB of pins

	// The in-RAM reader trips the budget...
	ctx, _ := run.WithBudget(context.Background(), budget)
	if _, err := hypergraph.ReadTextCtx(ctx, bytes.NewReader(data)); !errors.Is(err, run.ErrBudgetExceeded) {
		t.Fatalf("ReadTextCtx under budget: err = %v, want ErrBudgetExceeded", err)
	}

	// ...the streaming build does not.
	ctx, _ = run.WithBudget(context.Background(), budget)
	path := filepath.Join(t.TempDir(), "g.store")
	if err := BuildFileCtx(ctx, path, memSource("text", data)); err != nil {
		t.Fatalf("BuildFileCtx under budget: %v", err)
	}

	st, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	want, err := hypergraph.ReadText(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	gotD := csr.Decompose(st.CSR())
	wantD := csr.Decompose(csr.FromH(want))
	if gotD.MaxK != wantD.MaxK ||
		!slices.Equal(gotD.VertexCoreness, wantD.VertexCoreness) ||
		!slices.Equal(gotD.EdgeCoreness, wantD.EdgeCoreness) {
		t.Fatal("budget-built store decomposes differently from the in-RAM pipeline")
	}
}

// TestBuildRejectsUnknownFormat closes the Source.Format contract.
func TestBuildRejectsUnknownFormat(t *testing.T) {
	err := BuildFile(filepath.Join(t.TempDir(), "g.store"), memSource("pajek", nil))
	if err == nil || !strings.Contains(err.Error(), "unknown source format") {
		t.Fatalf("err = %v", err)
	}
}

// TestWriteAtomicOnCancel: a cancelled WriteCtx must leave neither the
// destination nor temp litter behind.
func TestWriteAtomicOnCancel(t *testing.T) {
	h := gen.RandomHypergraph(200, 150, 6, xrand.New(5))
	dir := t.TempDir()
	dst := filepath.Join(dir, "g.store")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := WriteHCtx(ctx, dst, h); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("temp litter after cancelled write: %v", ents)
	}
}
