//go:build linux

package store

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapSupported reports whether this build can memory-map store files.
const mmapSupported = true

// mapFile maps the whole file read-only and shared.  The mapping is
// page-granular, which is why the format page-aligns its sections.
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size > math.MaxInt {
		return nil, fmt.Errorf("store: %d-byte file exceeds the address space", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("store: mmap: %w", err)
	}
	return b, nil
}

func unmapFile(b []byte) error {
	return syscall.Munmap(b)
}

// mapFileRW maps the file read-write and shared, for the streaming
// builder's scatter pass over a freshly created temp file.
func mapFileRW(f *os.File, size int64) ([]byte, error) {
	if size > math.MaxInt {
		return nil, fmt.Errorf("store: %d-byte file exceeds the address space", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("store: mmap: %w", err)
	}
	return b, nil
}
