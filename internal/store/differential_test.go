package store_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"slices"
	"testing"

	"hyperplex/internal/check"
	"hyperplex/internal/core"
	"hyperplex/internal/cover"
	"hyperplex/internal/csr"
	"hyperplex/internal/dataset"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/store"
)

// viaStore round-trips h through a store file and returns the mapped
// (or, on non-mmap platforms, ReadAt-loaded) view.  The cleanup keeps
// the mapping alive for the test body.
func viaStore(t *testing.T, h *hypergraph.Hypergraph) (*store.File, *hypergraph.Hypergraph) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.store")
	if err := store.WriteH(path, h); err != nil {
		t.Fatalf("WriteH: %v", err)
	}
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	hs, err := st.H()
	if err != nil {
		t.Fatalf("H: %v", err)
	}
	return st, hs
}

func sameDecomposition(t *testing.T, label string, got, want *core.Decomposition) {
	t.Helper()
	if got.MaxK != want.MaxK ||
		!slices.Equal(got.VertexCoreness, want.VertexCoreness) ||
		!slices.Equal(got.EdgeCoreness, want.EdgeCoreness) {
		t.Fatalf("%s: store-backed decomposition differs from in-RAM", label)
	}
}

// TestStoreDecomposeDifferential pins the mmap-backed decomposition
// byte-identical to the in-RAM path over the full sweep: the core
// peeler and the CSR kernel both read the hypergraph through the
// store-served arrays and must produce exactly the in-RAM answer.
func TestStoreDecomposeDifferential(t *testing.T) {
	for i, h := range check.Instances(58, 0xC04E31) {
		_, hs := viaStore(t, h)
		sameDecomposition(t, labelOf(i), core.Decompose(hs), core.Decompose(h))
		gotC := csr.Decompose(csr.FromH(hs))
		wantC := csr.Decompose(csr.FromH(h))
		if gotC.MaxK != wantC.MaxK ||
			!slices.Equal(gotC.VertexCoreness, wantC.VertexCoreness) ||
			!slices.Equal(gotC.EdgeCoreness, wantC.EdgeCoreness) {
			t.Fatalf("%s: store-backed CSR decomposition differs from in-RAM", labelOf(i))
		}
	}
}

func labelOf(i int) string { return fmt.Sprintf("instance %d", i) }

// TestStoreCoverDifferential pins the greedy multicover over the
// store-backed view: same vertices, same selection order, bitwise the
// same weight, across the sweep.
func TestStoreCoverDifferential(t *testing.T) {
	for i, h := range check.Instances(58, 0xC04E31) {
		_, hs := viaStore(t, h)
		want, wantErr := cover.CSRGreedyMulticover(h, nil, nil)
		got, gotErr := cover.CSRGreedyMulticover(hs, nil, nil)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", labelOf(i), gotErr, wantErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: store-backed cover differs from in-RAM", labelOf(i))
		}
	}
}

// TestStoreCellzomeDifferential runs the paper's headline pipeline —
// the calibrated Cellzome instance, its core decomposition, and the
// greedy cover — through a store file and demands exact agreement,
// including the planted 6-core of 41 proteins.
func TestStoreCellzomeDifferential(t *testing.T) {
	inst := dataset.Cellzome()
	h := inst.H
	_, hs := viaStore(t, h)

	wantD := core.Decompose(h)
	gotD := core.Decompose(hs)
	sameDecomposition(t, "cellzome", gotD, wantD)
	nv := 0
	for _, k := range gotD.VertexCoreness {
		if k == gotD.MaxK {
			nv++
		}
	}
	if gotD.MaxK != 6 || nv != 41 {
		t.Fatalf("store-backed maximum core is the %d-core with %d proteins, want the 6-core with 41", gotD.MaxK, nv)
	}

	want, wantErr := cover.CSRGreedyMulticover(h, nil, nil)
	got, gotErr := cover.CSRGreedyMulticover(hs, nil, nil)
	if wantErr != nil || gotErr != nil {
		t.Fatalf("cover errors: %v vs %v", gotErr, wantErr)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("store-backed Cellzome cover differs from in-RAM")
	}
}
