package store

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"hyperplex/internal/csr"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// writeCheckEvery bounds how many variable-length records (names) pass
// between checkpoints in the section writers.
const writeCheckEvery = 256

// crcWriter counts and checksums the bytes of one section on their way
// into the buffered file writer.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
	n   int64
	buf []byte // encode scratch for int32 values
}

func newCRCWriter(w *bufio.Writer) *crcWriter {
	return &crcWriter{w: w, buf: make([]byte, 1<<16)}
}

func (cw *crcWriter) reset() { cw.crc, cw.n = 0, 0 }

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	cw.n += int64(len(p))
	return cw.w.Write(p)
}

// writeInt32s streams vals little-endian through the section checksum,
// checkpointing once per encode-buffer chunk.
func (cw *crcWriter) writeInt32s(ctx context.Context, meter *run.Meter, vals []int32) error {
	for len(vals) > 0 {
		if err := run.Tick(ctx, meter, 1); err != nil {
			return err
		}
		n := min(len(vals), len(cw.buf)/4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(cw.buf[4*i:], uint32(vals[i]))
		}
		if _, err := cw.Write(cw.buf[:4*n]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// writeNameBlob streams the concatenated names through the section
// checksum with interval checkpoints.
func (cw *crcWriter) writeNameBlob(ctx context.Context, meter *run.Meter, names []string) error {
	pending := 0
	for _, s := range names {
		if pending++; pending >= writeCheckEvery {
			if err := run.Tick(ctx, meter, int64(pending)); err != nil {
				return err
			}
			pending = 0
		}
		if _, err := cw.Write([]byte(s)); err != nil {
			return err
		}
	}
	return run.Tick(ctx, meter, int64(pending))
}

// zeroPage is the padding source; a page is the largest possible gap.
var zeroPage [pageSize]byte

// padToPage advances the writer to the next page boundary with zeros.
// Padding is outside the section, so it is not checksummed.
func padToPage(bw *bufio.Writer, written int64) error {
	rem := pagePad(written) - written
	if rem == 0 {
		return nil
	}
	_, err := bw.Write(zeroPage[:rem])
	return err
}

// nameOffsets builds the (n+1)-entry offset array over one side's
// names.  The total blob length is capped to the int32 offset space:
// beyond it the file format cannot represent the names and the write
// fails loudly.
func nameOffsets(kind string, names []string) ([]int32, int64, error) {
	off := make([]int32, len(names)+1)
	total := int64(0)
	for i, s := range names {
		total += int64(len(s))
		if total > maxInt32 {
			return nil, 0, fmt.Errorf("store: %s name blob exceeds the int32 offset space", kind)
		}
		off[i+1] = int32(total)
	}
	return off, total, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("store: sync %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("store: sync %s: %w", dir, cerr)
	}
	return nil
}

// finalizeAtomic flushes the buffered sections, stamps the header page
// at offset zero, fsyncs, and renames the temp file into place (then
// fsyncs the directory), so a crash at any point leaves either the old
// file or the complete new one — never a partial store.
func finalizeAtomic(tmp *os.File, bw *bufio.Writer, hdr *header, path string) error {
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if _, err := tmp.WriteAt(encodeHeader(hdr), 0); err != nil {
		return fmt.Errorf("store: write %s header: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: rename into %s: %w", path, err)
	}
	return syncDir(filepath.Dir(path))
}

// Write serializes a CSR (with optional ID maps and names) into a
// store file at path, atomically.
func Write(path string, c *csr.CSR, vNames, eNames []string) error {
	return WriteCtx(context.Background(), path, c, vNames, eNames)
}

// WriteCtx is Write honoring cancellation, deadline and any run.Budget
// attached to ctx (one step per 64 KiB section chunk).  The write goes
// to a same-directory temp file that is fsynced and renamed into
// place; on any error the temp file is removed and path is untouched.
func WriteCtx(ctx context.Context, path string, c *csr.CSR, vNames, eNames []string) (err error) {
	meter := run.MeterFrom(ctx)
	if err := run.Tick(ctx, meter, 0); err != nil {
		return err
	}
	numV, numE, pins := int64(c.NumVertices()), int64(c.NumEdges()), int64(len(c.EAdj))
	if len(c.VAdj) != len(c.EAdj) {
		return fmt.Errorf("store: pin counts disagree: %d vertex-side vs %d edge-side", len(c.VAdj), len(c.EAdj))
	}
	if numV >= maxInt32 || numE >= maxInt32 || pins > maxInt32 {
		return fmt.Errorf("store: %d vertices / %d hyperedges / %d pins overflow the int32 index space", numV, numE, pins)
	}
	hasIDs := c.VertexID != nil || c.EdgeID != nil
	if hasIDs && (int64(len(c.VertexID)) != numV || int64(len(c.EdgeID)) != numE) {
		return fmt.Errorf("store: ID maps must cover both sides (%d/%d entries for %d/%d)", len(c.VertexID), len(c.EdgeID), numV, numE)
	}
	if vNames != nil && int64(len(vNames)) != numV {
		return fmt.Errorf("store: %d vertex names for %d vertices", len(vNames), numV)
	}
	if eNames != nil && int64(len(eNames)) != numE {
		return fmt.Errorf("store: %d edge names for %d hyperedges", len(eNames), numE)
	}
	vBlob, eBlob := int64(-1), int64(-1)
	var vNameOff, eNameOff []int32
	if vNames != nil {
		if vNameOff, vBlob, err = nameOffsets("vertex", vNames); err != nil {
			return err
		}
	}
	if eNames != nil {
		if eNameOff, eBlob, err = nameOffsets("edge", eNames); err != nil {
			return err
		}
	}
	hdr := computeLayout(numV, numE, pins, hasIDs, vBlob, eBlob)

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: create temp for %s: %w", path, err)
	}
	finalized := false
	defer func() {
		if !finalized {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	// Header placeholder: the real page is stamped after the section
	// checksums are known.
	if _, err := bw.Write(zeroPage[:]); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	cw := newCRCWriter(bw)
	emit := func(i int, f func() error) error {
		if hdr.sec[i].size == 0 {
			return nil
		}
		cw.reset()
		if err := f(); err != nil {
			return fmt.Errorf("store: write %s section %d: %w", path, i, err)
		}
		if cw.n != hdr.sec[i].size {
			return fmt.Errorf("store: write %s section %d: wrote %d bytes, want %d", path, i, cw.n, hdr.sec[i].size)
		}
		hdr.sec[i].crc = cw.crc
		return padToPage(bw, cw.n)
	}
	ints := func(vals []int32) func() error {
		return func() error { return cw.writeInt32s(ctx, meter, vals) }
	}
	steps := []struct {
		sec  int
		emit func() error
	}{
		{secVOff, ints(c.VOff)},
		{secVAdj, ints(c.VAdj)},
		{secEOff, ints(c.EOff)},
		{secEAdj, ints(c.EAdj)},
		{secVertexID, ints(c.VertexID)},
		{secEdgeID, ints(c.EdgeID)},
		{secVNameOff, ints(vNameOff)},
		{secVNameBlob, func() error { return cw.writeNameBlob(ctx, meter, vNames) }},
		{secENameOff, ints(eNameOff)},
		{secENameBlob, func() error { return cw.writeNameBlob(ctx, meter, eNames) }},
	}
	for _, s := range steps {
		if err := run.Tick(ctx, meter, 0); err != nil {
			return err
		}
		if err := emit(s.sec, s.emit); err != nil {
			return err
		}
	}
	if err := finalizeAtomic(tmp, bw, &hdr, path); err != nil {
		return err
	}
	finalized = true
	return nil
}

// WriteH serializes a Hypergraph into a store file at path, names
// included, so the round trip through Open().H() is exact.
func WriteH(path string, h *hypergraph.Hypergraph) error {
	return WriteHCtx(context.Background(), path, h)
}

// WriteHCtx is WriteH honoring cancellation, deadline and budgets.
func WriteHCtx(ctx context.Context, path string, h *hypergraph.Hypergraph) error {
	meter := run.MeterFrom(ctx)
	sideNames := func(n int, name func(int) string) ([]string, error) {
		out := make([]string, n)
		named, pending := false, 0
		for i := range out {
			if pending++; pending >= writeCheckEvery {
				if err := run.Tick(ctx, meter, int64(pending)); err != nil {
					return nil, err
				}
				pending = 0
			}
			if out[i] = name(i); out[i] != "" {
				named = true
			}
		}
		if err := run.Tick(ctx, meter, int64(pending)); err != nil {
			return nil, err
		}
		if !named {
			return nil, nil
		}
		return out, nil
	}
	vNames, err := sideNames(h.NumVertices(), h.VertexName)
	if err != nil {
		return err
	}
	eNames, err := sideNames(h.NumEdges(), h.EdgeName)
	if err != nil {
		return err
	}
	return WriteCtx(ctx, path, csr.FromH(h), vNames, eNames)
}
