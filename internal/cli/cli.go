// Package cli holds the small helpers shared by the command-line
// tools in cmd/: input resolution (file vs stdin, text vs Matrix
// Market) and name formatting.  Keeping them here lets every command's
// run function be a pure function of (args, stdin, stdout), which the
// command tests exercise directly.
package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/mmio"
	"hyperplex/internal/store"
)

// ReadHypergraph loads a hypergraph from path (or stdin when path is
// empty), in the native text format or — when mtx is true — as a
// Matrix Market file whose columns become hyperedges.
func ReadHypergraph(mtx bool, path string, stdin io.Reader) (*hypergraph.Hypergraph, error) {
	return ReadHypergraphCtx(context.Background(), mtx, path, stdin)
}

// ReadHypergraphCtx is ReadHypergraph honoring cancellation, deadline
// and any run.Budget attached to ctx (forwarded to the underlying
// format readers).
func ReadHypergraphCtx(ctx context.Context, mtx bool, path string, stdin io.Reader) (*hypergraph.Hypergraph, error) {
	var r io.Reader = stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if mtx {
		m, err := mmio.ReadCtx(ctx, r)
		if err != nil {
			return nil, err
		}
		return mmio.ToHypergraph(m)
	}
	return hypergraph.ReadTextCtx(ctx, r)
}

// OpenStore opens a binary store file and returns both the backend and
// its hypergraph view.  The view aliases the store's (possibly memory-
// mapped) arrays: the caller must keep the backend open while the
// hypergraph is in use and Close it afterwards.
func OpenStore(path string) (*store.File, *hypergraph.Hypergraph, error) {
	return OpenStoreCtx(context.Background(), path)
}

// OpenStoreCtx is OpenStore honoring cancellation, deadline and any
// run.Budget attached to ctx.
func OpenStoreCtx(ctx context.Context, path string) (*store.File, *hypergraph.Hypergraph, error) {
	st, err := store.OpenCtx(ctx, path, store.Options{})
	if err != nil {
		return nil, nil, err
	}
	h, err := st.H()
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	return st, h, nil
}

// WithTimeout returns ctx bounded by the -timeout flag value: a zero
// or negative timeout means no bound (the cancel func is still
// non-nil and must be deferred).
func WithTimeout(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, timeout)
}

// RecoverPanic converts a panic in a command's run function into the
// error return, so an injected fault or latent bug reports cleanly
// instead of crashing with a stack trace.  Use as
//
//	defer cli.RecoverPanic(&err)
func RecoverPanic(err *error) {
	if x := recover(); x != nil {
		if e, ok := x.(error); ok {
			*err = fmt.Errorf("internal error: %w", e)
			return
		}
		*err = fmt.Errorf("internal error: panic: %v", x)
	}
}

// VertexLabel returns the vertex's name, or a stable fallback.
func VertexLabel(h *hypergraph.Hypergraph, v int) string {
	if name := h.VertexName(v); name != "" {
		return name
	}
	return fmt.Sprintf("v%d", v)
}

// EdgeLabel returns the hyperedge's name, or a stable fallback.
func EdgeLabel(h *hypergraph.Hypergraph, f int) string {
	if name := h.EdgeName(f); name != "" {
		return name
	}
	return fmt.Sprintf("f%d", f)
}
