// Package cli holds the small helpers shared by the command-line
// tools in cmd/: input resolution (file vs stdin, text vs Matrix
// Market) and name formatting.  Keeping them here lets every command's
// run function be a pure function of (args, stdin, stdout), which the
// command tests exercise directly.
package cli

import (
	"fmt"
	"io"
	"os"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/mmio"
)

// ReadHypergraph loads a hypergraph from path (or stdin when path is
// empty), in the native text format or — when mtx is true — as a
// Matrix Market file whose columns become hyperedges.
func ReadHypergraph(mtx bool, path string, stdin io.Reader) (*hypergraph.Hypergraph, error) {
	var r io.Reader = stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if mtx {
		m, err := mmio.Read(r)
		if err != nil {
			return nil, err
		}
		return mmio.ToHypergraph(m)
	}
	return hypergraph.ReadText(r)
}

// VertexLabel returns the vertex's name, or a stable fallback.
func VertexLabel(h *hypergraph.Hypergraph, v int) string {
	if name := h.VertexName(v); name != "" {
		return name
	}
	return fmt.Sprintf("v%d", v)
}

// EdgeLabel returns the hyperedge's name, or a stable fallback.
func EdgeLabel(h *hypergraph.Hypergraph, f int) string {
	if name := h.EdgeName(f); name != "" {
		return name
	}
	return fmt.Sprintf("f%d", f)
}
