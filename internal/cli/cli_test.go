package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hyperplex/internal/hypergraph"
)

func TestReadHypergraphStdinText(t *testing.T) {
	h, err := ReadHypergraph(false, "", strings.NewReader("e: a b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 2 || h.NumEdges() != 1 {
		t.Errorf("shape: %v", h)
	}
}

func TestReadHypergraphFileMtx(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.mtx")
	content := "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHypergraph(true, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 2 || h.NumEdges() != 2 {
		t.Errorf("shape: %v", h)
	}
	if _, err := ReadHypergraph(true, filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLabels(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("named", "prot")
	h := b.MustBuild()
	if VertexLabel(h, 0) != "prot" || EdgeLabel(h, 0) != "named" {
		t.Error("named labels wrong")
	}
	h2, err := hypergraph.FromEdgeSets(1, [][]int32{{0}})
	if err != nil {
		t.Fatal(err)
	}
	// FromEdgeSets names everything v0/f0 already; exercise fallback by
	// checking the format contract is satisfied either way.
	if VertexLabel(h2, 0) == "" || EdgeLabel(h2, 0) == "" {
		t.Error("labels must never be empty")
	}
}
