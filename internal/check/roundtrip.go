package check

import (
	"bytes"
	"fmt"
	"math"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/mmio"
	"hyperplex/internal/pajek"
)

// defaultVertexName mirrors the writers' substitution for unnamed IDs.
func defaultVertexName(h *hypergraph.Hypergraph, v int) string {
	if n := h.VertexName(v); n != "" {
		return n
	}
	return fmt.Sprintf("v%d", v)
}

func defaultEdgeName(h *hypergraph.Hypergraph, f int) string {
	if n := h.EdgeName(f); n != "" {
		return n
	}
	return fmt.Sprintf("f%d", f)
}

// SameNamed verifies that two hypergraphs are equal up to vertex ID
// permutation under name identity (with the writers' v%d/f%d defaults
// substituted for empty names): same vertex name set, same hyperedge
// sequence, and the same member name set for every hyperedge.  This is
// the equality a text-format round trip preserves, where vertex IDs are
// reassigned in order of appearance.
func SameNamed(a, b *hypergraph.Hypergraph) error {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return fmt.Errorf("check: shape differs: %v vs %v", a, b)
	}
	bID := make(map[string]int, b.NumVertices())
	for v := 0; v < b.NumVertices(); v++ {
		bID[defaultVertexName(b, v)] = v
	}
	for v := 0; v < a.NumVertices(); v++ {
		if _, ok := bID[defaultVertexName(a, v)]; !ok {
			return fmt.Errorf("check: vertex %q missing from second hypergraph", defaultVertexName(a, v))
		}
	}
	for f := 0; f < a.NumEdges(); f++ {
		if an, bn := defaultEdgeName(a, f), defaultEdgeName(b, f); an != bn {
			return fmt.Errorf("check: hyperedge %d named %q vs %q", f, an, bn)
		}
		am, bm := a.Vertices(f), b.Vertices(f)
		if len(am) != len(bm) {
			return fmt.Errorf("check: hyperedge %d has %d vs %d members", f, len(am), len(bm))
		}
		for _, v := range am {
			w, ok := bID[defaultVertexName(a, int(v))]
			if !ok || !b.EdgeContains(f, w) {
				return fmt.Errorf("check: hyperedge %d member %q missing from second hypergraph",
					f, defaultVertexName(a, int(v)))
			}
		}
	}
	return nil
}

// SameStructure verifies ID-level equality of the incidence structure,
// ignoring names: same counts and the same member-ID list for every
// hyperedge.
func SameStructure(a, b *hypergraph.Hypergraph) error {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return fmt.Errorf("check: shape differs: %v vs %v", a, b)
	}
	for f := 0; f < a.NumEdges(); f++ {
		am, bm := a.Vertices(f), b.Vertices(f)
		if len(am) != len(bm) {
			return fmt.Errorf("check: hyperedge %d has %d vs %d members", f, len(am), len(bm))
		}
		for i := range am {
			if am[i] != bm[i] {
				return fmt.Errorf("check: hyperedge %d member %d: vertex %d vs %d", f, i, am[i], bm[i])
			}
		}
	}
	return nil
}

// RoundTripText verifies the text format: h survives write→read under
// name equality, the re-read hypergraph is structurally valid, and a
// second write→read→write is byte-stable (the first write
// canonicalizes vertex order).
func RoundTripText(h *hypergraph.Hypergraph) error {
	var b1 bytes.Buffer
	if err := hypergraph.WriteText(&b1, h); err != nil {
		return fmt.Errorf("check: text write: %w", err)
	}
	h2, err := hypergraph.ReadText(bytes.NewReader(b1.Bytes()))
	if err != nil {
		return fmt.Errorf("check: re-read of text output: %w", err)
	}
	if err := h2.Validate(); err != nil {
		return fmt.Errorf("check: text round trip produced invalid hypergraph: %w", err)
	}
	if err := SameNamed(h, h2); err != nil {
		return fmt.Errorf("check: text round trip: %w", err)
	}
	var b2 bytes.Buffer
	if err := hypergraph.WriteText(&b2, h2); err != nil {
		return fmt.Errorf("check: text write: %w", err)
	}
	h3, err := hypergraph.ReadText(bytes.NewReader(b2.Bytes()))
	if err != nil {
		return fmt.Errorf("check: re-read of canonical text output: %w", err)
	}
	var b3 bytes.Buffer
	if err := hypergraph.WriteText(&b3, h3); err != nil {
		return fmt.Errorf("check: text write: %w", err)
	}
	if !bytes.Equal(b2.Bytes(), b3.Bytes()) {
		return fmt.Errorf("check: text format not write-stable after one canonicalizing round trip")
	}
	return nil
}

// RoundTripJSON verifies the JSON wire form: marshal→unmarshal
// preserves h under name equality and marshaling is byte-stable.
func RoundTripJSON(h *hypergraph.Hypergraph) error {
	b1, err := h.MarshalJSON()
	if err != nil {
		return fmt.Errorf("check: json marshal: %w", err)
	}
	h2, err := hypergraph.UnmarshalJSONHypergraph(b1)
	if err != nil {
		return fmt.Errorf("check: json unmarshal of own output: %w", err)
	}
	if err := h2.Validate(); err != nil {
		return fmt.Errorf("check: json round trip produced invalid hypergraph: %w", err)
	}
	if err := SameNamed(h, h2); err != nil {
		return fmt.Errorf("check: json round trip: %w", err)
	}
	b2, err := h2.MarshalJSON()
	if err != nil {
		return fmt.Errorf("check: json marshal: %w", err)
	}
	if !bytes.Equal(b1, b2) {
		return fmt.Errorf("check: json marshaling not byte-stable across a round trip")
	}
	return nil
}

// RoundTripMatrixMarket verifies the Matrix Market path: the
// hypergraph→matrix→file→matrix→hypergraph cycle preserves the
// incidence structure exactly (names are not carried by the format).
func RoundTripMatrixMarket(h *hypergraph.Hypergraph) error {
	m1 := mmio.FromHypergraph(h)
	var buf bytes.Buffer
	if err := mmio.Write(&buf, m1); err != nil {
		return fmt.Errorf("check: mm write: %w", err)
	}
	m2, err := mmio.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("check: mm re-read of own output: %w", err)
	}
	if err := sameMatrix(m1, m2); err != nil {
		return err
	}
	h2, err := mmio.ToHypergraph(m2)
	if err != nil {
		return fmt.Errorf("check: mm to hypergraph: %w", err)
	}
	if err := h2.Validate(); err != nil {
		return fmt.Errorf("check: mm round trip produced invalid hypergraph: %w", err)
	}
	if err := SameStructure(h, h2); err != nil {
		return fmt.Errorf("check: mm round trip: %w", err)
	}
	return nil
}

func sameMatrix(a, b *mmio.Matrix) error {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() || a.Pattern != b.Pattern {
		return fmt.Errorf("check: matrix shape differs: %dx%d/%d/%t vs %dx%d/%d/%t",
			a.Rows, a.Cols, a.NNZ(), a.Pattern, b.Rows, b.Cols, b.NNZ(), b.Pattern)
	}
	for k := 0; k < a.NNZ(); k++ {
		if a.RowIdx[k] != b.RowIdx[k] || a.ColIdx[k] != b.ColIdx[k] ||
			math.Float64bits(a.Val[k]) != math.Float64bits(b.Val[k]) {
			return fmt.Errorf("check: matrix entry %d differs: (%d,%d,%g) vs (%d,%d,%g)",
				k, a.RowIdx[k], a.ColIdx[k], a.Val[k], b.RowIdx[k], b.ColIdx[k], b.Val[k])
		}
	}
	return nil
}

// RoundTripPajek verifies the Pajek .net export: reading WriteNet's
// output back reproduces every vertex and hyperedge label and exactly
// the pin set of h.
func RoundTripPajek(h *hypergraph.Hypergraph) error {
	var buf bytes.Buffer
	if err := pajek.WriteNet(&buf, h, nil, nil); err != nil {
		return fmt.Errorf("check: pajek write: %w", err)
	}
	info, err := pajek.ReadNet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("check: pajek re-read of own output: %w", err)
	}
	nv, ne := h.NumVertices(), h.NumEdges()
	if len(info.Labels) != nv+ne {
		return fmt.Errorf("check: pajek round trip kept %d labels, want %d", len(info.Labels), nv+ne)
	}
	for v := 0; v < nv; v++ {
		if info.Labels[v] != defaultVertexName(h, v) {
			return fmt.Errorf("check: pajek vertex %d labeled %q, want %q", v, info.Labels[v], defaultVertexName(h, v))
		}
	}
	for f := 0; f < ne; f++ {
		if info.Labels[nv+f] != defaultEdgeName(h, f) {
			return fmt.Errorf("check: pajek hyperedge %d labeled %q, want %q", f, info.Labels[nv+f], defaultEdgeName(h, f))
		}
	}
	if len(info.Edges) != h.NumPins() {
		return fmt.Errorf("check: pajek round trip kept %d pins, want %d", len(info.Edges), h.NumPins())
	}
	i := 0
	for f := 0; f < ne; f++ {
		for _, v := range h.Vertices(f) {
			want := [2]int{int(v) + 1, nv + f + 1}
			if info.Edges[i] != want {
				return fmt.Errorf("check: pajek pin %d is %v, want %v", i, info.Edges[i], want)
			}
			i++
		}
	}
	return nil
}

// RoundTripAll runs every format's round-trip check.
func RoundTripAll(h *hypergraph.Hypergraph) error {
	if err := RoundTripText(h); err != nil {
		return err
	}
	if err := RoundTripJSON(h); err != nil {
		return err
	}
	if err := RoundTripMatrixMarket(h); err != nil {
		return err
	}
	return RoundTripPajek(h)
}
