package check

import (
	"hyperplex/internal/gen"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

// Instances returns count deterministic hypergraphs for a differential
// sweep: a fixed prefix of crafted corner cases (empty hypergraph,
// isolated vertices, duplicate and nested hyperedges, stars, dense
// uniform families) followed by generated instances of varied size and
// density — uniform random hypergraphs interleaved with power-law
// configuration models, all driven by xrand so equal seeds give
// identical sweeps on every platform.
func Instances(count int, seed uint64) []*hypergraph.Hypergraph {
	out := crafted()
	if count < len(out) {
		return out[:count]
	}
	rng := xrand.New(seed)
	for len(out) < count {
		nv := 2 + rng.Intn(59)
		ne := 1 + rng.Intn(44)
		maxSize := 1 + rng.Intn(7)
		if len(out)%5 == 4 {
			if h := powerLawInstance(nv, ne, rng); h != nil {
				out = append(out, h)
				continue
			}
		}
		out = append(out, gen.RandomHypergraph(nv, ne, maxSize, rng))
	}
	return out
}

// crafted returns the corner cases every sweep starts with.  Keep this
// list append-only so instance indices stay stable across PRs.
func crafted() []*hypergraph.Hypergraph {
	all3of5 := [][]int32{}
	for a := int32(0); a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			for c := b + 1; c < 5; c++ {
				all3of5 = append(all3of5, []int32{a, b, c})
			}
		}
	}
	return []*hypergraph.Hypergraph{
		mustFromEdgeSets(0, nil),                        // empty
		mustFromEdgeSets(4, nil),                        // isolated vertices only
		mustFromEdgeSets(5, [][]int32{{0, 1, 2, 3, 4}}), // one all-covering edge
		mustFromEdgeSets(4, [][]int32{ // duplicate hyperedges
			{0, 1}, {0, 1}, {0, 1}, {2, 3}}),
		mustFromEdgeSets(6, [][]int32{ // nested chain + side edge
			{0, 1, 2, 3, 4, 5}, {1, 2, 3, 4}, {2, 3}, {2}, {4, 5}}),
		mustFromEdgeSets(6, [][]int32{ // two triangles
			{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}),
		mustFromEdgeSets(7, [][]int32{ // star around a hub
			{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}}),
		mustFromEdgeSets(5, all3of5), // dense 3-uniform family
	}
}

func mustFromEdgeSets(nv int, edges [][]int32) *hypergraph.Hypergraph {
	h, err := hypergraph.FromEdgeSets(nv, edges)
	if err != nil {
		panic("check: crafted instance invalid: " + err.Error())
	}
	return h
}

// powerLawInstance wires a configuration-model hypergraph whose vertex
// degrees follow the paper's power law.  It returns nil when a valid
// size sequence cannot be arranged for the drawn parameters, in which
// case the caller falls back to a uniform instance.
func powerLawInstance(nv, ne int, rng *xrand.RNG) *hypergraph.Hypergraph {
	dmax := 8
	if dmax > nv {
		dmax = nv
	}
	deg := gen.PowerLawDegreeSequence(nv, 2.5, 1, dmax, rng)
	sum := 0
	for _, d := range deg {
		sum += d
	}
	if sum < ne {
		ne = sum
	}
	if ne == 0 || sum > ne*nv {
		return nil
	}
	sizes := make([]int, ne)
	for i := range sizes {
		sizes[i] = 1
	}
	for rest, guard := sum-ne, 0; rest > 0; guard++ {
		if guard > 100000 {
			return nil
		}
		f := rng.Intn(ne)
		if sizes[f] < nv {
			sizes[f]++
			rest--
		}
	}
	edges, err := gen.BipartiteConfiguration(deg, sizes, rng)
	if err != nil {
		return nil
	}
	h, err := hypergraph.FromEdgeSets(nv, edges)
	if err != nil {
		return nil
	}
	return h
}
