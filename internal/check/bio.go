package check

import (
	"hyperplex/internal/hypergraph"
)

// Naive reimplementations of internal/bio's reliability math, used by
// the differential tests.  They share no code with the production
// versions: bait counts come from a nested membership scan instead of
// the vertex→edge incidence lists, and probabilities come from running
// products instead of closed-form math.Pow / logarithm expressions.

// BaitCountsNaive returns, for every complex, how many of the given
// baits (with multiplicity) are members, by scanning each complex's
// member list for each bait.
func BaitCountsNaive(h *hypergraph.Hypergraph, baits []int) []int {
	counts := make([]int, h.NumEdges())
	for f := 0; f < h.NumEdges(); f++ {
		for _, b := range baits {
			for _, v := range h.Vertices(f) {
				if int(v) == b {
					counts[f]++
					break
				}
			}
		}
	}
	return counts
}

// RecoveryProbNaive returns the probability that at least one of n
// independent pull-downs succeeds, each with probability p, via the
// complement's running product (no math.Pow).
func RecoveryProbNaive(p float64, n int) float64 {
	miss := 1.0
	for i := 0; i < n; i++ {
		miss *= 1 - p
	}
	return 1 - miss
}

// RequirementNaive returns the smallest bait count r ≥ 1 whose
// recovery probability reaches the target, found by incremental
// search, capped at the complex's cardinality d.  A non-positive d
// yields 0 (an empty complex needs no baits).
func RequirementNaive(p, target float64, d int) int {
	if d <= 0 {
		return 0
	}
	miss := 1.0
	for r := 1; r < d; r++ {
		miss *= 1 - p
		if 1-miss >= target {
			return r
		}
	}
	return d
}

// RecoveryMeanNaive averages the per-complex recovery probabilities
// with compensated (Kahan) summation, so the differential test does
// not inherit the production code's summation order.
func RecoveryMeanNaive(per []float64) float64 {
	if len(per) == 0 {
		return 0
	}
	sum, comp := 0.0, 0.0
	for _, x := range per {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(per))
}
