package check

import (
	"bytes"
	"strings"
	"testing"

	"hyperplex/internal/core"
	"hyperplex/internal/cover"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/stats"
)

// testHypergraph is small but exercises every peeling rule: a dense
// 2-core, a contained hyperedge, a duplicate, and a pendant vertex.
func testHypergraph(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdgeSets(7, [][]int32{
		{0, 1, 2}, {1, 2, 3}, {0, 2, 3}, {0, 1, 3}, // dense block
		{1, 2},    // contained in edges 0 and 1
		{0, 1, 2}, // duplicate of edge 0
		{3, 4},    // pendant path
		{5},       // low-degree leaf edge
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestValidCoreAcceptsAndRejects runs the checker on the real KCore
// result, then on systematically corrupted copies: every corruption
// must be reported.
func TestValidCoreAcceptsAndRejects(t *testing.T) {
	h := testHypergraph(t)
	for k := 0; k <= 4; k++ {
		r := core.KCore(h, k)
		if err := ValidCore(h, k, r); err != nil {
			t.Fatalf("k=%d: genuine result rejected: %v", k, err)
		}
	}

	r := core.KCore(h, 2)
	if r.NumVertices == 0 {
		t.Fatal("test hypergraph should have a non-empty 2-core")
	}
	mutations := []func(*core.Result){
		func(m *core.Result) { m.VertexIn[firstTrue(m.VertexIn)] = false; m.NumVertices-- },
		func(m *core.Result) { m.VertexIn[firstFalse(m.VertexIn)] = true; m.NumVertices++ },
		func(m *core.Result) { m.EdgeIn[firstTrue(m.EdgeIn)] = false; m.NumEdges-- },
		func(m *core.Result) { m.EdgeIn[firstFalse(m.EdgeIn)] = true; m.NumEdges++ },
		func(m *core.Result) { m.NumVertices++ },
		func(m *core.Result) { m.K++ },
	}
	for i, mutate := range mutations {
		m := &core.Result{
			K:           r.K,
			VertexIn:    append([]bool(nil), r.VertexIn...),
			EdgeIn:      append([]bool(nil), r.EdgeIn...),
			NumVertices: r.NumVertices,
			NumEdges:    r.NumEdges,
		}
		mutate(m)
		if err := ValidCore(h, 2, m); err == nil {
			t.Errorf("mutation %d not detected by ValidCore", i)
		}
	}
}

func TestValidBiCoreMatchesBiCore(t *testing.T) {
	h := testHypergraph(t)
	for _, kl := range [][2]int{{0, 1}, {1, 2}, {2, 2}, {2, 3}, {1, 4}} {
		r := core.BiCore(h, kl[0], kl[1])
		if err := ValidBiCore(h, kl[0], kl[1], r); err != nil {
			t.Errorf("BiCore(%d,%d) rejected: %v", kl[0], kl[1], err)
		}
	}
}

func TestValidDecomposition(t *testing.T) {
	h := testHypergraph(t)
	d := core.Decompose(h)
	if err := ValidDecomposition(h, d); err != nil {
		t.Fatalf("genuine decomposition rejected: %v", err)
	}
	bad := &core.Decomposition{
		VertexCoreness: append([]int(nil), d.VertexCoreness...),
		EdgeCoreness:   append([]int(nil), d.EdgeCoreness...),
		MaxK:           d.MaxK,
	}
	bad.VertexCoreness[0]++
	if err := ValidDecomposition(h, bad); err == nil {
		t.Error("inflated vertex coreness not detected")
	}
}

func TestValidCoverAcceptsAndRejects(t *testing.T) {
	h := testHypergraph(t)
	c, err := cover.Greedy(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidCover(h, c, nil, nil); err != nil {
		t.Fatalf("genuine cover rejected: %v", err)
	}

	// Uncover a vertex: some hyperedge must go short.
	broken := &cover.Cover{
		Vertices: append([]int(nil), c.Vertices[1:]...),
		InCover:  append([]bool(nil), c.InCover...),
		Weight:   c.Weight - 1,
	}
	broken.InCover[c.Vertices[0]] = false
	if err := ValidCover(h, broken, nil, nil); err == nil {
		t.Error("infeasible cover not detected")
	}
	// Lie about the weight.
	lied := &cover.Cover{Vertices: c.Vertices, InCover: c.InCover, Weight: c.Weight / 2}
	if err := ValidCover(h, lied, nil, nil); err == nil {
		t.Error("wrong weight not detected")
	}
	// Multicover requirement beyond what the cover provides.
	req := make([]int, h.NumEdges())
	for f := range req {
		req[f] = h.EdgeDegree(f)
	}
	if err := ValidCover(h, c, nil, req); err == nil {
		t.Error("unmet multicover requirement not detected")
	}
}

func TestValidPrimalDualAcceptsAndRejects(t *testing.T) {
	h := testHypergraph(t)
	pd, err := cover.PrimalDual(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidPrimalDual(h, nil, pd); err != nil {
		t.Fatalf("genuine primal-dual result rejected: %v", err)
	}
	inflated := &cover.PrimalDualResult{
		Cover:     pd.Cover,
		Dual:      append([]float64(nil), pd.Dual...),
		DualValue: pd.DualValue + 10,
	}
	inflated.Dual[0] += 10
	if err := ValidPrimalDual(h, nil, inflated); err == nil {
		t.Error("dual infeasibility not detected")
	}
}

func TestMulticoverOptBrute(t *testing.T) {
	// Star: center covers everything; optimum is 1.
	h, err := hypergraph.FromEdgeSets(5, [][]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	opt, in, err := MulticoverOptBrute(h, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 || !in[0] {
		t.Errorf("star optimum = %g with center in=%t, want 1 with center chosen", opt, in[0])
	}
	// 2-multicover forces both endpoints of every edge.
	req := []int{2, 2, 2, 2}
	opt2, _, err := MulticoverOptBrute(h, nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if opt2 != 5 {
		t.Errorf("2-multicover optimum = %g, want 5", opt2)
	}
	// Infeasible requirement is reported.
	if _, _, err := MulticoverOptBrute(h, nil, []int{3, 1, 1, 1}); err == nil {
		t.Error("infeasible requirement not reported")
	}
}

func TestShortestPathNaiveAndValidPath(t *testing.T) {
	h := testHypergraph(t)
	d, ok := ShortestPathNaive(h, 0, 4)
	if !ok || d != 2 {
		t.Errorf("distance 0→4 = %d, %t; want 2, true", d, ok)
	}
	if _, ok := ShortestPathNaive(h, 0, 6); ok {
		t.Error("isolated vertex 6 reported reachable")
	}
	p, ok := stats.ShortestPath(h, 0, 4)
	if !ok {
		t.Fatal("stats.ShortestPath found no path 0→4")
	}
	if err := ValidPath(h, 0, 4, p); err != nil {
		t.Errorf("genuine path rejected: %v", err)
	}
	bad := p
	bad.Vertices = append([]int(nil), p.Vertices...)
	bad.Vertices[len(bad.Vertices)-1] = 5
	if err := ValidPath(h, 0, 4, bad); err == nil {
		t.Error("path with wrong endpoint not detected")
	}
}

func TestRoundTripCheckers(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("CPX1", "a", "b", "c")
	b.AddEdge("CPX2", "b", "d")
	b.AddVertex("lonely")
	h := b.MustBuild()
	if err := RoundTripAll(h); err != nil {
		t.Errorf("round trip of a named hypergraph: %v", err)
	}
	if err := SameNamed(h, h); err != nil {
		t.Errorf("SameNamed not reflexive: %v", err)
	}
	other := testHypergraph(t)
	if err := SameNamed(h, other); err == nil {
		t.Error("SameNamed equated different hypergraphs")
	}
}

func TestInstancesDeterministicAndDiverse(t *testing.T) {
	a := Instances(30, 42)
	bset := Instances(30, 42)
	if len(a) != 30 || len(bset) != 30 {
		t.Fatalf("got %d/%d instances, want 30", len(a), len(bset))
	}
	for i := range a {
		var wa, wb bytes.Buffer
		if err := hypergraph.WriteText(&wa, a[i]); err != nil {
			t.Fatal(err)
		}
		if err := hypergraph.WriteText(&wb, bset[i]); err != nil {
			t.Fatal(err)
		}
		if wa.String() != wb.String() {
			t.Fatalf("instance %d differs between equal-seed sweeps", i)
		}
		if err := a[i].Validate(); err != nil {
			t.Errorf("instance %d invalid: %v", i, err)
		}
	}
	diff := Instances(30, 43)
	same := 0
	for i := 10; i < 30; i++ { // skip the crafted prefix
		var wa, wb strings.Builder
		_ = hypergraph.WriteText(&wa, a[i])
		_ = hypergraph.WriteText(&wb, diff[i])
		if wa.String() == wb.String() {
			same++
		}
	}
	if same == 20 {
		t.Error("different seeds produced identical generated instances")
	}
}

func firstTrue(b []bool) int {
	for i, x := range b {
		if x {
			return i
		}
	}
	return -1
}

func firstFalse(b []bool) int {
	for i, x := range b {
		if !x {
			return i
		}
	}
	return -1
}
