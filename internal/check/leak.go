package check

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// GoroutineSnapshot returns one header line ("goroutine N [state]: ...
// created by F") per live goroutine, sorted, for leak detection by
// snapshot-and-diff.  The goroutine ID is stripped so that a goroutine
// that merely changed ID between snapshots does not register as a
// leak; the creation site (the "created by" frame) is appended so two
// goroutines parked in the same state but born in different places
// stay distinguishable.
func GoroutineSnapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for _, block := range strings.Split(string(buf), "\n\n") {
		lines := strings.Split(block, "\n")
		header := lines[0]
		if !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		// "goroutine 17 [chan receive]:" → "[chan receive]".
		if i := strings.Index(header, " ["); i >= 0 {
			header = header[i+1:]
		}
		created := ""
		for _, l := range lines[1:] {
			if strings.HasPrefix(l, "created by ") {
				created = strings.TrimSpace(l)
				break
			}
		}
		out = append(out, header+" "+created)
	}
	sort.Strings(out)
	return out
}

// CheckNoLeaks compares the current goroutines against a snapshot
// taken before the operation under test, retrying for up to window so
// goroutines that are merely still winding down (worker pools draining
// after cancellation) are not reported.  It returns nil when every
// goroutine either existed before or has exited, and otherwise an
// error listing the leaked headers.
func CheckNoLeaks(before []string, window time.Duration) error {
	deadline := time.Now().Add(window)
	for {
		leaked := diffGoroutines(before, GoroutineSnapshot())
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("check: %d leaked goroutine(s):\n  %s",
				len(leaked), strings.Join(leaked, "\n  "))
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// diffGoroutines returns the entries of after not accounted for by
// before, treating equal headers as interchangeable (multiset
// difference over the sorted slices).
func diffGoroutines(before, after []string) []string {
	var leaked []string
	i := 0
	for _, a := range after {
		for i < len(before) && before[i] < a {
			i++
		}
		if i < len(before) && before[i] == a {
			i++
			continue
		}
		leaked = append(leaked, a)
	}
	return leaked
}
