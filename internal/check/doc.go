// Package check is the repository's differential-oracle correctness
// subsystem: definitional reference implementations ("oracles") and
// invariant checkers that the fast algorithm packages are validated
// against in tests.
//
// The paper's headline algorithm — k-core peeling with overlap-count
// maximality detection — is exactly the kind of clever-but-subtle
// optimization that can silently diverge from the definition it
// replaces, and the same risk applies to every future performance PR
// (sharding, batching, caching).  This package therefore provides three
// layers, all independent of the implementations they judge:
//
//   - invariant checkers (ValidCore, ValidBiCore, ValidDecomposition,
//     ValidCover, ValidPrimalDual, ValidPath) that verify a result
//     satisfies the paper's definitions on the original hypergraph;
//   - naive oracles (KCoreOracle, BiCoreOracle, ShortestPathNaive,
//     MulticoverOptBrute) computed directly from the definitions by
//     fixpoint iteration, breadth-first search, or exhaustive
//     enumeration;
//   - a deterministic differential driver (Instances) that generates a
//     reproducible sweep of corner-case and random hypergraphs for the
//     TestDifferential* tests in core, cover, stats, and hypergraph.
//
// check imports the algorithm packages (core, cover, stats, mmio,
// pajek), so those packages' differential tests live in external test
// packages (package foo_test) to keep the import graph acyclic.
//
// Everything here favors clarity over speed: the oracles are meant to
// be obviously correct, not fast, and are sized for the generated sweep
// plus the Cellzome instance.
package check
