package check

import (
	"errors"
	"fmt"
	"math"

	"hyperplex/internal/cover"
	"hyperplex/internal/hypergraph"
)

// floatEps is the tolerance for comparing accumulated float64 weights.
func floatEps(scale float64) float64 { return 1e-9 * (1 + math.Abs(scale)) }

// ValidCover verifies a (multi)cover result independently of
// cover.Verify: the membership slice and vertex list must agree (no
// duplicates, consistent counts), the recorded weight must equal the
// sum of the chosen vertices' weights, and every hyperedge f must
// contain at least req[f] chosen vertices (1 when req is nil; 0
// disables the constraint).  weights may be nil for unit weights.
func ValidCover(h *hypergraph.Hypergraph, c *cover.Cover, weights []float64, req []int) error {
	if c == nil {
		return fmt.Errorf("check: nil cover")
	}
	nv, ne := h.NumVertices(), h.NumEdges()
	if len(c.InCover) != nv {
		return fmt.Errorf("check: InCover has %d entries for %d vertices", len(c.InCover), nv)
	}
	if req != nil && len(req) != ne {
		return fmt.Errorf("check: %d requirements for %d hyperedges", len(req), ne)
	}
	seen := make(map[int]bool, len(c.Vertices))
	for _, v := range c.Vertices {
		if v < 0 || v >= nv {
			return fmt.Errorf("check: cover lists out-of-range vertex %d", v)
		}
		if seen[v] {
			return fmt.Errorf("check: cover lists vertex %d twice", v)
		}
		seen[v] = true
		if !c.InCover[v] {
			return fmt.Errorf("check: cover lists vertex %d but InCover[%d] is false", v, v)
		}
	}
	if got := countTrue(c.InCover); got != len(c.Vertices) {
		return fmt.Errorf("check: %d vertices marked in InCover but %d listed", got, len(c.Vertices))
	}
	wantW := 0.0
	for v, in := range c.InCover {
		if !in {
			continue
		}
		if weights == nil {
			wantW++
		} else {
			wantW += weights[v]
		}
	}
	if math.Abs(wantW-c.Weight) > floatEps(wantW) {
		return fmt.Errorf("check: cover weight recorded as %g, chosen vertices sum to %g", c.Weight, wantW)
	}
	for f := 0; f < ne; f++ {
		r := 1
		if req != nil {
			r = req[f]
		}
		if r <= 0 {
			continue
		}
		got := 0
		for _, v := range h.Vertices(f) {
			if c.InCover[v] {
				got++
			}
		}
		if got < r {
			return fmt.Errorf("check: hyperedge %d covered %d times, requirement %d", f, got, r)
		}
	}
	return nil
}

// ValidPrimalDual verifies the primal-dual certificate: the cover is
// feasible, the dual variables are non-negative and pack within every
// vertex's weight, DualValue is their sum, and weak duality plus the
// Δ_F guarantee hold:
//
//	DualValue ≤ Cover.Weight ≤ Δ_F · DualValue.
//
// weights may be nil for unit weights.
func ValidPrimalDual(h *hypergraph.Hypergraph, weights []float64, r *cover.PrimalDualResult) error {
	if r == nil {
		return fmt.Errorf("check: nil primal-dual result")
	}
	if err := ValidCover(h, r.Cover, weights, nil); err != nil {
		return err
	}
	nv, ne := h.NumVertices(), h.NumEdges()
	if len(r.Dual) != ne {
		return fmt.Errorf("check: %d dual variables for %d hyperedges", len(r.Dual), ne)
	}
	sum := 0.0
	for f, y := range r.Dual {
		if y < 0 || math.IsNaN(y) || math.IsInf(y, 0) {
			return fmt.Errorf("check: dual variable y[%d] = %g is not a non-negative finite value", f, y)
		}
		sum += y
	}
	if math.Abs(sum-r.DualValue) > floatEps(sum) {
		return fmt.Errorf("check: DualValue recorded as %g, dual variables sum to %g", r.DualValue, sum)
	}
	for v := 0; v < nv; v++ {
		w := 1.0
		if weights != nil {
			w = weights[v]
		}
		packed := 0.0
		for _, f := range h.Edges(v) {
			packed += r.Dual[f]
		}
		if packed > w+floatEps(w) {
			return fmt.Errorf("check: dual infeasible at vertex %d: Σ y_f = %g > w = %g", v, packed, w)
		}
	}
	if r.DualValue > r.Cover.Weight+floatEps(r.Cover.Weight) {
		return fmt.Errorf("check: weak duality violated: dual %g > primal %g", r.DualValue, r.Cover.Weight)
	}
	if dF := h.MaxEdgeDegree(); dF > 0 {
		bound := float64(dF) * r.DualValue
		if r.Cover.Weight > bound+floatEps(bound) {
			return fmt.Errorf("check: Δ_F guarantee violated: weight %g > Δ_F·dual = %d·%g", r.Cover.Weight, dF, r.DualValue)
		}
	} else if r.Cover.Weight != 0 {
		return fmt.Errorf("check: non-empty cover of weight %g for an edgeless hypergraph", r.Cover.Weight)
	}
	return nil
}

// CertifyPrimalDual is the differential oracle for cover.PrimalDual:
// it runs the schema on (h, weights) and checks the full certificate —
// structural validity and the Δ_F guarantee via ValidPrimalDual,
// feasibility via cover.Verify, and the weak-duality sandwich against
// the true optimum,
//
//	DualValue ≤ OPT ≤ Cover.Weight ≤ Δ_F · DualValue,
//
// with OPT from the branch-and-bound in cover.Exact.  maxNodes caps
// the exact search (0 for its default); a capped search downgrades the
// sandwich to inconclusive rather than failing, so the oracle stays
// usable on fuzz inputs of unpredictable hardness.  h must have no
// empty hyperedge (PrimalDual's only legitimate failure).
func CertifyPrimalDual(h *hypergraph.Hypergraph, weights []float64, maxNodes int64) error {
	r, err := cover.PrimalDual(h, weights)
	if err != nil {
		return fmt.Errorf("check: primal-dual failed: %w", err)
	}
	if err := ValidPrimalDual(h, weights, r); err != nil {
		return err
	}
	if err := cover.Verify(h, r.Cover, nil); err != nil {
		return fmt.Errorf("check: primal-dual cover infeasible: %w", err)
	}
	opt, err := cover.Exact(h, weights, maxNodes)
	if errors.Is(err, cover.ErrSearchCapped) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("check: exact search failed: %w", err)
	}
	if r.DualValue > opt.Weight+floatEps(opt.Weight) {
		return fmt.Errorf("check: dual value %g exceeds the optimum %g", r.DualValue, opt.Weight)
	}
	if opt.Weight > r.Cover.Weight+floatEps(r.Cover.Weight) {
		return fmt.Errorf("check: optimum %g exceeds the primal-dual cover weight %g", opt.Weight, r.Cover.Weight)
	}
	return nil
}
