package check

import (
	"strings"
	"testing"
	"time"
)

func TestCheckNoLeaksClean(t *testing.T) {
	before := GoroutineSnapshot()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	if err := CheckNoLeaks(before, time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestCheckNoLeaksDetects(t *testing.T) {
	before := GoroutineSnapshot()
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started
	err := CheckNoLeaks(before, 50*time.Millisecond)
	if err == nil {
		t.Fatal("want a leak report for the still-blocked goroutine")
	}
	if !strings.Contains(err.Error(), "leaked goroutine") {
		t.Fatalf("unexpected error text: %v", err)
	}
}

func TestDiffGoroutinesMultiset(t *testing.T) {
	before := []string{"[chan receive] created by a", "[chan receive] created by a", "[select] created by b"}
	after := []string{"[chan receive] created by a", "[chan receive] created by a", "[chan receive] created by a", "[select] created by b"}
	leaked := diffGoroutines(before, after)
	if len(leaked) != 1 || leaked[0] != "[chan receive] created by a" {
		t.Fatalf("want exactly the third duplicate reported, got %v", leaked)
	}
	if got := diffGoroutines(after, before); got != nil {
		t.Fatalf("shrinking should report nothing, got %v", got)
	}
}
