package check

import (
	"fmt"

	"hyperplex/internal/core"
	"hyperplex/internal/hypergraph"
)

// ValidCore verifies that r is exactly the k-core of h as defined in
// the paper: structurally consistent, every surviving vertex has alive
// degree ≥ k (≥ 1 for k ≤ 0), every surviving hyperedge is non-empty
// and maximal among survivors, and the surviving sets equal the maximum
// such sub-hypergraph (checked against KCoreOracle).  k must be ≥ 0.
func ValidCore(h *hypergraph.Hypergraph, k int, r *core.Result) error {
	return validCore(h, k, 1, r)
}

// ValidBiCore is ValidCore for the (k, l)-core: surviving hyperedges
// must additionally keep at least l alive vertices.
func ValidBiCore(h *hypergraph.Hypergraph, k, l int, r *core.Result) error {
	return validCore(h, k, l, r)
}

func validCore(h *hypergraph.Hypergraph, k, l int, r *core.Result) error {
	if r == nil {
		return fmt.Errorf("check: nil core result")
	}
	if k < 0 {
		k = 0
	}
	if l < 1 {
		l = 1
	}
	if r.K != k {
		return fmt.Errorf("check: result labeled K=%d, want %d", r.K, k)
	}
	nv, ne := h.NumVertices(), h.NumEdges()
	if len(r.VertexIn) != nv || len(r.EdgeIn) != ne {
		return fmt.Errorf("check: result over %d/%d vertices/edges, hypergraph has %d/%d",
			len(r.VertexIn), len(r.EdgeIn), nv, ne)
	}
	if got := countTrue(r.VertexIn); got != r.NumVertices {
		return fmt.Errorf("check: NumVertices=%d but %d vertices marked in", r.NumVertices, got)
	}
	if got := countTrue(r.EdgeIn); got != r.NumEdges {
		return fmt.Errorf("check: NumEdges=%d but %d edges marked in", r.NumEdges, got)
	}

	// Local invariants, checked on the original hypergraph for sharper
	// error messages than the oracle comparison alone.
	minDeg := k
	if minDeg < 1 {
		minDeg = 1
	}
	for v := 0; v < nv; v++ {
		if !r.VertexIn[v] {
			continue
		}
		d := 0
		for _, f := range h.Edges(v) {
			if r.EdgeIn[f] {
				d++
			}
		}
		if d < minDeg {
			return fmt.Errorf("check: surviving vertex %d has alive degree %d < %d", v, d, minDeg)
		}
	}
	alive := make([][]int32, ne)
	for f := 0; f < ne; f++ {
		if !r.EdgeIn[f] {
			continue
		}
		for _, v := range h.Vertices(f) {
			if r.VertexIn[v] {
				alive[f] = append(alive[f], v)
			}
		}
		if len(alive[f]) < l {
			return fmt.Errorf("check: surviving hyperedge %d keeps %d vertices < %d", f, len(alive[f]), l)
		}
	}
	for f := 0; f < ne; f++ {
		if !r.EdgeIn[f] {
			continue
		}
		if containedInAlive(h, f, alive, r.EdgeIn) {
			return fmt.Errorf("check: surviving hyperedge %d is not maximal among survivors", f)
		}
	}

	// Maximum-ness: the survivors must equal the definitional fixpoint,
	// not merely form a valid sub-hypergraph of it.  The vertex set of a
	// core is unique, but hyperedges that shrink to the SAME induced
	// member set during peeling are interchangeable — which copy survives
	// depends on deletion order — so the edge families are compared as
	// sets of induced member sets, not by hyperedge ID.
	vIn, eIn := coreFixpoint(h, k, l)
	if v, ok := firstMismatch(r.VertexIn, vIn); !ok {
		return fmt.Errorf("check: vertex %d: result says in=%t, oracle says %t (k=%d, l=%d)",
			v, r.VertexIn[v], vIn[v], k, l)
	}
	if err := sameEdgeFamily(h, r.VertexIn, r.EdgeIn, eIn); err != nil {
		return fmt.Errorf("check: result vs oracle (k=%d, l=%d): %w", k, l, err)
	}
	return nil
}

// inducedKey returns a canonical string key for the alive part of
// hyperedge f (member IDs are stored sorted, so the induced subsequence
// is already canonical).
func inducedKey(h *hypergraph.Hypergraph, vIn []bool, f int) string {
	var b []byte
	for _, v := range h.Vertices(f) {
		if vIn[v] {
			b = fmt.Appendf(b, "%d,", v)
		}
	}
	return string(b)
}

// sameEdgeFamily verifies that two edge-membership slices over the SAME
// surviving vertex set describe the same family of induced member sets.
// Both families come from reduced hypergraphs, so induced sets within
// one family are pairwise distinct and a set comparison is exact.
func sameEdgeFamily(h *hypergraph.Hypergraph, vIn, aIn, bIn []bool) error {
	seen := make(map[string]int)
	for f := range bIn {
		if bIn[f] {
			seen[inducedKey(h, vIn, f)] = f
		}
	}
	na := 0
	for f := range aIn {
		if !aIn[f] {
			continue
		}
		na++
		key := inducedKey(h, vIn, f)
		if _, ok := seen[key]; !ok {
			return fmt.Errorf("surviving hyperedge %d (induced set {%s}) has no counterpart", f, key)
		}
		delete(seen, key)
	}
	for key, f := range seen {
		return fmt.Errorf("hyperedge %d (induced set {%s}) survives only in the second family (%d vs %d edges)",
			f, key, na, na+len(seen))
	}
	return nil
}

// ValidDecomposition verifies a full core decomposition: coreness
// arrays sized to h, MaxK attained, and every level's extracted core
// equal to the definitional fixpoint (including level MaxK+1, which
// must be empty).
func ValidDecomposition(h *hypergraph.Hypergraph, d *core.Decomposition) error {
	if d == nil {
		return fmt.Errorf("check: nil decomposition")
	}
	nv, ne := h.NumVertices(), h.NumEdges()
	if len(d.VertexCoreness) != nv || len(d.EdgeCoreness) != ne {
		return fmt.Errorf("check: decomposition over %d/%d vertices/edges, hypergraph has %d/%d",
			len(d.VertexCoreness), len(d.EdgeCoreness), nv, ne)
	}
	maxV := 0
	for v, c := range d.VertexCoreness {
		if c < 0 {
			return fmt.Errorf("check: vertex %d has negative coreness %d", v, c)
		}
		if c > maxV {
			maxV = c
		}
	}
	if maxV != d.MaxK {
		return fmt.Errorf("check: MaxK=%d but maximum vertex coreness is %d", d.MaxK, maxV)
	}
	for f, c := range d.EdgeCoreness {
		if c < 0 || c > d.MaxK {
			return fmt.Errorf("check: hyperedge %d coreness %d outside [0, MaxK=%d]", f, c, d.MaxK)
		}
	}
	for k := 1; k <= d.MaxK+1; k++ {
		r := d.Core(k)
		vIn, eIn := KCoreOracle(h, k)
		if v, ok := firstMismatch(r.VertexIn, vIn); !ok {
			return fmt.Errorf("check: level %d: vertex %d coreness disagrees with oracle (in=%t, oracle %t)",
				k, v, r.VertexIn[v], vIn[v])
		}
		if err := sameEdgeFamily(h, r.VertexIn, r.EdgeIn, eIn); err != nil {
			return fmt.Errorf("check: level %d vs oracle: %w", k, err)
		}
	}
	return nil
}

// SameResult reports the first point of disagreement between two core
// results of h, for differential tests comparing two fast
// implementations directly.  Vertex membership and counts must match
// exactly; edge families are compared as sets of induced member sets,
// since hyperedges that shrink to the same induced set during peeling
// are interchangeable and the surviving copy is deletion-order
// dependent.
func SameResult(h *hypergraph.Hypergraph, a, b *core.Result) error {
	if len(a.VertexIn) != len(b.VertexIn) || len(a.EdgeIn) != len(b.EdgeIn) {
		return fmt.Errorf("check: results differ in shape: %d/%d vs %d/%d",
			len(a.VertexIn), len(a.EdgeIn), len(b.VertexIn), len(b.EdgeIn))
	}
	if v, ok := firstMismatch(a.VertexIn, b.VertexIn); !ok {
		return fmt.Errorf("check: results disagree on vertex %d: %t vs %t", v, a.VertexIn[v], b.VertexIn[v])
	}
	if err := sameEdgeFamily(h, a.VertexIn, a.EdgeIn, b.EdgeIn); err != nil {
		return fmt.Errorf("check: %w", err)
	}
	if a.NumVertices != b.NumVertices || a.NumEdges != b.NumEdges {
		return fmt.Errorf("check: results disagree on counts: %d/%d vs %d/%d",
			a.NumVertices, a.NumEdges, b.NumVertices, b.NumEdges)
	}
	return nil
}

func countTrue(b []bool) int {
	n := 0
	for _, x := range b {
		if x {
			n++
		}
	}
	return n
}

// firstMismatch returns (index, false) for the first position where the
// slices differ, or (0, true) when they agree everywhere.
func firstMismatch(a, b []bool) (int, bool) {
	for i := range a {
		if a[i] != b[i] {
			return i, false
		}
	}
	return 0, true
}
