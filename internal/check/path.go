package check

import (
	"fmt"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/stats"
)

// ValidPath verifies that p is a well-formed alternating vertex–
// hyperedge path from from to to (§1.3 of the paper): endpoints match,
// consecutive vertices share the hyperedge between them, and no vertex
// or hyperedge repeats.  It does not check minimality; pair it with
// ShortestPathNaive for that.
func ValidPath(h *hypergraph.Hypergraph, from, to int, p stats.HyperPath) error {
	if len(p.Vertices) == 0 {
		return fmt.Errorf("check: empty path")
	}
	if len(p.Vertices) != len(p.Edges)+1 {
		return fmt.Errorf("check: path has %d vertices and %d hyperedges, want one more vertex than hyperedges",
			len(p.Vertices), len(p.Edges))
	}
	if p.Vertices[0] != from || p.Vertices[len(p.Vertices)-1] != to {
		return fmt.Errorf("check: path runs %d→%d, want %d→%d",
			p.Vertices[0], p.Vertices[len(p.Vertices)-1], from, to)
	}
	seenV := make(map[int]bool, len(p.Vertices))
	for _, v := range p.Vertices {
		if v < 0 || v >= h.NumVertices() {
			return fmt.Errorf("check: path visits out-of-range vertex %d", v)
		}
		if seenV[v] {
			return fmt.Errorf("check: path visits vertex %d twice", v)
		}
		seenV[v] = true
	}
	seenE := make(map[int]bool, len(p.Edges))
	for i, f := range p.Edges {
		if f < 0 || f >= h.NumEdges() {
			return fmt.Errorf("check: path uses out-of-range hyperedge %d", f)
		}
		if seenE[f] {
			return fmt.Errorf("check: path uses hyperedge %d twice", f)
		}
		seenE[f] = true
		if !h.EdgeContains(f, p.Vertices[i]) || !h.EdgeContains(f, p.Vertices[i+1]) {
			return fmt.Errorf("check: hyperedge %d does not join vertices %d and %d",
				f, p.Vertices[i], p.Vertices[i+1])
		}
	}
	return nil
}
