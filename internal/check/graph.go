package check

import (
	"fmt"

	"hyperplex/internal/csr"
	"hyperplex/internal/graph"
	"hyperplex/internal/hypergraph"
)

// Naive oracles for the graph expansions of internal/graph (§1.2's
// baseline models).  Each recomputes the expected edge set with plain
// maps and nested loops, sharing no code with the CSR implementations,
// so the differential driver can compare the two.

// pairKey normalizes an undirected edge to (min, max).
func pairKey(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

// CliqueEdges returns the edge set of the clique expansion: every
// unordered pair of distinct co-members of some hyperedge.
func CliqueEdges(h *hypergraph.Hypergraph) map[[2]int32]bool {
	want := make(map[[2]int32]bool)
	for f := 0; f < h.NumEdges(); f++ {
		m := h.Vertices(f)
		for i := 0; i < len(m); i++ {
			for j := i + 1; j < len(m); j++ {
				if m[i] != m[j] {
					want[pairKey(m[i], m[j])] = true
				}
			}
		}
	}
	return want
}

// StarEdges returns the edge set of the star expansion under the same
// bait rule as graph.StarExpansion: baitOf[f] if given and ≥ 0, else
// the member with the highest degree (ties to the lowest ID).  Degrees
// are recounted from the pin lists rather than taken from the
// hypergraph's cached values.
func StarEdges(h *hypergraph.Hypergraph, baitOf []int) map[[2]int32]bool {
	deg := make(map[int32]int)
	for f := 0; f < h.NumEdges(); f++ {
		for _, v := range h.Vertices(f) {
			deg[v]++
		}
	}
	want := make(map[[2]int32]bool)
	for f := 0; f < h.NumEdges(); f++ {
		m := h.Vertices(f)
		if len(m) < 2 {
			continue
		}
		bait := -1
		if baitOf != nil {
			bait = baitOf[f]
		}
		if bait < 0 {
			best := int32(-1)
			for _, v := range m {
				if best < 0 || deg[v] > deg[best] {
					best = v
				}
			}
			bait = int(best)
		}
		for _, v := range m {
			if int(v) != bait {
				want[pairKey(int32(bait), v)] = true
			}
		}
	}
	return want
}

// IntersectionEdges returns, for every unordered pair of hyperedges
// sharing at least one vertex, the size of their intersection —
// computed by materializing member sets and comparing all pairs.
func IntersectionEdges(h *hypergraph.Hypergraph) map[[2]int32]int {
	ne := h.NumEdges()
	members := make([]map[int32]bool, ne)
	for f := 0; f < ne; f++ {
		members[f] = make(map[int32]bool, h.EdgeDegree(f))
		for _, v := range h.Vertices(f) {
			members[f][v] = true
		}
	}
	want := make(map[[2]int32]int)
	for f := 0; f < ne; f++ {
		for g := f + 1; g < ne; g++ {
			shared := 0
			for v := range members[f] {
				if members[g][v] {
					shared++
				}
			}
			if shared > 0 {
				want[[2]int32{int32(f), int32(g)}] = shared
			}
		}
	}
	return want
}

// BipartiteEdges returns the edge set of B(H): one edge per pin,
// between vertex v and hyperedge node |V|+f.
func BipartiteEdges(h *hypergraph.Hypergraph) map[[2]int32]bool {
	nv := csr.MustInt32(h.NumVertices())
	want := make(map[[2]int32]bool)
	for f := 0; f < h.NumEdges(); f++ {
		for _, v := range h.Vertices(f) {
			want[pairKey(v, nv+int32(f))] = true
		}
	}
	return want
}

// SameGraph checks that g has exactly n vertices and exactly the edges
// of want (in both adjacency directions).
func SameGraph(g *graph.Graph, n int, want map[[2]int32]bool) error {
	if g.NumVertices() != n {
		return fmt.Errorf("check: graph has %d vertices, want %d", g.NumVertices(), n)
	}
	if g.NumEdges() != len(want) {
		return fmt.Errorf("check: graph has %d edges, want %d", g.NumEdges(), len(want))
	}
	for e := range want {
		if !g.HasEdge(int(e[0]), int(e[1])) || !g.HasEdge(int(e[1]), int(e[0])) {
			return fmt.Errorf("check: graph is missing edge (%d,%d)", e[0], e[1])
		}
	}
	// Edge counts match and every wanted edge is present, so no edge of
	// g can be outside want; still verify degree consistency both ways.
	total := 0
	for v := 0; v < n; v++ {
		total += g.Degree(v)
	}
	if total != 2*len(want) {
		return fmt.Errorf("check: degree sum %d, want %d", total, 2*len(want))
	}
	return nil
}
