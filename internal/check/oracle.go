package check

import (
	"fmt"
	"math"
	"math/bits"

	"hyperplex/internal/hypergraph"
)

// KCoreOracle computes the k-core of h directly from the definition by
// round-based fixpoint iteration: repeatedly delete every hyperedge
// whose alive part is empty or contained in another alive hyperedge
// (keeping the lowest-ID copy of equal hyperedges), and every vertex
// whose alive degree is below k (below 1 for k ≤ 0, since every core is
// a reduced hypergraph without isolated vertices).  It shares no code
// with core.KCore, core.KCoreNaive, or core.KCoreParallel.
func KCoreOracle(h *hypergraph.Hypergraph, k int) (vIn, eIn []bool) {
	return coreFixpoint(h, k, 1)
}

// BiCoreOracle computes the (k, l)-core of h by the same fixpoint
// iteration with the additional rule that hyperedges whose alive part
// has fewer than l vertices are deleted.
func BiCoreOracle(h *hypergraph.Hypergraph, k, l int) (vIn, eIn []bool) {
	return coreFixpoint(h, k, l)
}

func coreFixpoint(h *hypergraph.Hypergraph, k, l int) (vIn, eIn []bool) {
	nv, ne := h.NumVertices(), h.NumEdges()
	vIn = make([]bool, nv)
	eIn = make([]bool, ne)
	for v := range vIn {
		vIn[v] = true
	}
	for f := range eIn {
		eIn[f] = true
	}
	if l < 1 {
		l = 1
	}
	minDeg := k
	if minDeg < 1 {
		minDeg = 1 // even the 0-core drops isolated vertices
	}
	for changed := true; changed; {
		changed = false
		// Alive member lists are stable for the whole edge pass because
		// vertices are only deleted afterwards.
		alive := make([][]int32, ne)
		for f := 0; f < ne; f++ {
			if !eIn[f] {
				continue
			}
			for _, v := range h.Vertices(f) {
				if vIn[v] {
					alive[f] = append(alive[f], v)
				}
			}
		}
		for f := 0; f < ne; f++ {
			if !eIn[f] {
				continue
			}
			if len(alive[f]) < l || containedInAlive(h, f, alive, eIn) {
				eIn[f] = false
				changed = true
			}
		}
		for v := 0; v < nv; v++ {
			if !vIn[v] {
				continue
			}
			d := 0
			for _, f := range h.Edges(v) {
				if eIn[f] {
					d++
				}
			}
			if d < minDeg {
				vIn[v] = false
				changed = true
			}
		}
	}
	return vIn, eIn
}

// containedInAlive reports whether the alive part of f (non-empty) is a
// subset of the alive part of some other alive hyperedge g, with the
// tie-break that keeps exactly one copy of equal hyperedges: f dies
// when |g| > |f|, or |g| = |f| and g has the smaller ID.  Candidates g
// are restricted to hyperedges sharing f's first alive vertex, which
// any superset must contain.
func containedInAlive(h *hypergraph.Hypergraph, f int, alive [][]int32, eIn []bool) bool {
	mf := alive[f]
	for _, g32 := range h.Edges(int(mf[0])) {
		g := int(g32)
		if g == f || !eIn[g] {
			continue
		}
		mg := alive[g]
		if len(mg) < len(mf) || (len(mg) == len(mf) && g > f) {
			continue
		}
		if subsetSorted(mf, mg) {
			return true
		}
	}
	return false
}

// subsetSorted reports a ⊆ b for ascending-sorted slices.
func subsetSorted(a, b []int32) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j == len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// ShortestPathNaive returns the alternating-path distance between two
// vertices (number of hyperedges on a shortest path, 0 for from == to)
// by plain breadth-first search over the incidence lists, independent
// of internal/graph and internal/stats.  ok is false when the vertices
// are disconnected.
func ShortestPathNaive(h *hypergraph.Hypergraph, from, to int) (dist int, ok bool) {
	if from == to {
		return 0, true
	}
	nv := h.NumVertices()
	d := make([]int, nv)
	for i := range d {
		d[i] = -1
	}
	eSeen := make([]bool, h.NumEdges())
	d[from] = 0
	queue := []int{from}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, f := range h.Edges(u) {
			if eSeen[f] {
				continue
			}
			eSeen[f] = true
			for _, w := range h.Vertices(int(f)) {
				if d[w] >= 0 {
					continue
				}
				d[w] = d[u] + 1
				if int(w) == to {
					return d[w], true
				}
				queue = append(queue, int(w))
			}
		}
	}
	return 0, false
}

// MulticoverOptBrute computes the exact minimum-weight multicover by
// enumerating every vertex subset; weights may be nil for unit weights
// and req may be nil for plain covering.  It refuses hypergraphs with
// more than 20 vertices, and reports an error when some hyperedge's
// requirement exceeds its cardinality (the instance is infeasible).
func MulticoverOptBrute(h *hypergraph.Hypergraph, weights []float64, req []int) (float64, []bool, error) {
	nv, ne := h.NumVertices(), h.NumEdges()
	if nv > 20 {
		return 0, nil, fmt.Errorf("check: brute-force multicover limited to 20 vertices, got %d", nv)
	}
	if weights == nil {
		weights = make([]float64, nv)
		for i := range weights {
			weights[i] = 1
		}
	}
	need := make([]int, ne)
	masks := make([]uint64, ne)
	for f := 0; f < ne; f++ {
		r := 1
		if req != nil {
			r = req[f]
		}
		if r > h.EdgeDegree(f) {
			return 0, nil, fmt.Errorf("check: hyperedge %d has %d vertices but requirement %d", f, h.EdgeDegree(f), r)
		}
		need[f] = r
		for _, v := range h.Vertices(f) {
			masks[f] |= 1 << uint(v)
		}
	}
	best := math.Inf(1)
	bestMask := uint64(0)
	for mask := uint64(0); mask < 1<<uint(nv); mask++ {
		w := 0.0
		for m := mask; m != 0; m &= m - 1 {
			w += weights[bits.TrailingZeros64(m)]
		}
		if w >= best {
			continue
		}
		feasible := true
		for f := 0; f < ne; f++ {
			if bits.OnesCount64(masks[f]&mask) < need[f] {
				feasible = false
				break
			}
		}
		if feasible {
			best = w
			bestMask = mask
		}
	}
	in := make([]bool, nv)
	for v := 0; v < nv; v++ {
		in[v] = bestMask&(1<<uint(v)) != 0
	}
	return best, in, nil
}
