// Package hyperplex is a library for modeling protein-complex data —
// and any other set-system data — as hypergraphs, reproducing the
// system of Ramadan, Tarafdar and Pothen, "A Hypergraph Model for the
// Yeast Protein Complex Network" (IPPS 2004).
//
// The hypergraph has one vertex per protein and one hyperedge per
// complex.  On top of that model the package offers:
//
//   - k-cores of hypergraphs (and graphs), including the paper's
//     overlap-count algorithm for maintaining hyperedge maximality, a
//     full core decomposition, and a parallel peeling variant;
//   - minimum-weight vertex covers and multicovers (greedy H_m
//     approximation and a certifying primal-dual algorithm) for bait
//     selection;
//   - network statistics: degree distributions with power-law fits,
//     connected components, small-world metrics under the alternating
//     vertex–hyperedge path metric;
//   - the baseline graph models the paper compares against (clique and
//     star expansions, the complex intersection graph, the bipartite
//     graph B(H));
//   - Matrix Market and Pajek interchange, deterministic synthetic
//     dataset generators, and a TAP pull-down experiment simulator.
//
// This root package is a façade re-exporting the library's public
// surface; the implementation lives in the internal packages and the
// runnable entry points in cmd/ and examples/.
package hyperplex

import (
	"context"
	"io"

	"hyperplex/internal/bio"
	"hyperplex/internal/core"
	"hyperplex/internal/cover"
	"hyperplex/internal/dataset"
	"hyperplex/internal/gen"
	"hyperplex/internal/graph"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/mmio"
	"hyperplex/internal/pajek"
	"hyperplex/internal/run"
	"hyperplex/internal/stats"
	"hyperplex/internal/xrand"
)

// ---- Hypergraph model -------------------------------------------------

// Hypergraph is an immutable hypergraph H = (V, F): vertices are
// proteins, hyperedges are complexes.  See internal/hypergraph for the
// full method set (degrees, adjacency, reduction, dual, sub-hypergraphs,
// serialization).
type Hypergraph = hypergraph.Hypergraph

// Builder accumulates vertices and hyperedges and produces an
// immutable Hypergraph.
type Builder = hypergraph.Builder

// NewBuilder returns an empty hypergraph builder.
func NewBuilder() *Builder { return hypergraph.NewBuilder() }

// FromEdgeSets builds a hypergraph over nv vertices from member-ID
// sets.
func FromEdgeSets(nv int, edges [][]int32) (*Hypergraph, error) {
	return hypergraph.FromEdgeSets(nv, edges)
}

// ReadHypergraph parses the native text format ("name: members...",
// one hyperedge per line).
func ReadHypergraph(r io.Reader) (*Hypergraph, error) { return hypergraph.ReadText(r) }

// WriteHypergraph writes the native text format.
func WriteHypergraph(w io.Writer, h *Hypergraph) error { return hypergraph.WriteText(w, h) }

// ---- k-cores ----------------------------------------------------------

// CoreResult is a k-core as membership slices over the original IDs.
type CoreResult = core.Result

// Decomposition is the full core decomposition of a hypergraph.
type Decomposition = core.Decomposition

// KCore computes the k-core of a hypergraph with the paper's
// overlap-count peeling algorithm.
func KCore(h *Hypergraph, k int) *CoreResult { return core.KCore(h, k) }

// MaxCore returns the maximum core of a hypergraph.
func MaxCore(h *Hypergraph) *CoreResult { return core.MaxCore(h) }

// Decompose computes the coreness of every vertex and hyperedge.
func Decompose(h *Hypergraph) *Decomposition { return core.Decompose(h) }

// KCoreParallel computes the k-core with a round-synchronous parallel
// peeling algorithm (workers ≤ 0 selects NumCPU).
func KCoreParallel(h *Hypergraph, k, workers int) *CoreResult {
	return core.KCoreParallel(h, k, workers)
}

// BiCore computes the (k, l)-core: minimum vertex degree k AND minimum
// hyperedge size l, generalizing KCore (= the (k, 1)-core).
func BiCore(h *Hypergraph, k, l int) *CoreResult { return core.BiCore(h, k, l) }

// GraphCoreness computes the coreness of every vertex of a graph in
// O(|V| + |E|).
func GraphCoreness(g *Graph) []int { return core.GraphCoreness(g) }

// GraphKCore returns the k-core membership of a graph.
func GraphKCore(g *Graph, k int) []bool { return core.GraphKCore(g, k) }

// GraphMaxCore returns the maximum core level and membership of a
// graph.
func GraphMaxCore(g *Graph) (int, []bool) { return core.GraphMaxCore(g) }

// ---- Cancellation and budgets -----------------------------------------
//
// Every kernel has a …Ctx variant that honors context cancellation and
// deadlines at bounded checkpoint intervals and charges an optional
// resource budget attached to the context.  The plain variants are
// thin wrappers over context.Background().

// Budget bounds a computation: maximum algorithm steps, maximum bytes
// read/allocated by readers, maximum wall clock.  Zero fields are
// unlimited.
type Budget = run.Budget

// ErrBudgetExceeded is returned (wrapped) by …Ctx APIs when a Budget
// limit is hit.
var ErrBudgetExceeded = run.ErrBudgetExceeded

// WithBudget attaches a budget to a context; the returned meter
// reports how much was consumed when the call returns.
func WithBudget(ctx context.Context, b Budget) (context.Context, *run.Meter) {
	return run.WithBudget(ctx, b)
}

// KCoreCtx is KCore with cancellation and budget checkpoints.
func KCoreCtx(ctx context.Context, h *Hypergraph, k int) (*CoreResult, error) {
	return core.KCoreCtx(ctx, h, k)
}

// MaxCoreCtx is MaxCore with cancellation and budget checkpoints.
func MaxCoreCtx(ctx context.Context, h *Hypergraph) (*CoreResult, error) {
	return core.MaxCoreCtx(ctx, h)
}

// DecomposeCtx is Decompose with cancellation and budget checkpoints.
func DecomposeCtx(ctx context.Context, h *Hypergraph) (*Decomposition, error) {
	return core.DecomposeCtx(ctx, h)
}

// BiCoreCtx is BiCore with cancellation and budget checkpoints.
func BiCoreCtx(ctx context.Context, h *Hypergraph, k, l int) (*CoreResult, error) {
	return core.BiCoreCtx(ctx, h, k, l)
}

// KCoreParallelCtx is KCoreParallel with cancellation and budget
// checkpoints; worker panics are recovered and returned as a
// *core.WorkerPanicError.
func KCoreParallelCtx(ctx context.Context, h *Hypergraph, k, workers int) (*CoreResult, error) {
	return core.KCoreParallelCtx(ctx, h, k, workers)
}

// GreedyCoverCtx is GreedyCover with cancellation and budget
// checkpoints.
func GreedyCoverCtx(ctx context.Context, h *Hypergraph, weights []float64) (*Cover, error) {
	return cover.GreedyCtx(ctx, h, weights)
}

// GreedyMulticoverCtx is GreedyMulticover with cancellation and budget
// checkpoints.
func GreedyMulticoverCtx(ctx context.Context, h *Hypergraph, weights []float64, req []int) (*Cover, error) {
	return cover.GreedyMulticoverCtx(ctx, h, weights, req)
}

// SmallWorldStatsCtx is SmallWorldStats with cancellation and budget
// checkpoints.  On error the returned summary is a partial sampled
// estimate over the sources completed so far.
func SmallWorldStatsCtx(ctx context.Context, h *Hypergraph, workers int) (SmallWorld, error) {
	return stats.SmallWorldStatsCtx(ctx, h, workers)
}

// ReadHypergraphCtx is ReadHypergraph with cancellation and budget
// checkpoints (bytes read charge the budget's alloc limit).
func ReadHypergraphCtx(ctx context.Context, r io.Reader) (*Hypergraph, error) {
	return hypergraph.ReadTextCtx(ctx, r)
}

// ---- Vertex covers ----------------------------------------------------

// Cover is the result of a covering algorithm.
type Cover = cover.Cover

// PrimalDualResult carries a cover plus a dual lower-bound
// certificate.
type PrimalDualResult = cover.PrimalDualResult

// GreedyCover computes an approximate minimum-weight vertex cover
// (Johnson–Chvátal–Lovász greedy, H_m approximation).  weights may be
// nil for minimum cardinality.
func GreedyCover(h *Hypergraph, weights []float64) (*Cover, error) {
	return cover.Greedy(h, weights)
}

// GreedyMulticover covers each hyperedge f at least req[f] times.
func GreedyMulticover(h *Hypergraph, weights []float64, req []int) (*Cover, error) {
	return cover.GreedyMulticover(h, weights, req)
}

// PrimalDualCover runs the certifying primal-dual cover algorithm
// (Δ_F approximation with a per-instance lower bound).
func PrimalDualCover(h *Hypergraph, weights []float64) (*PrimalDualResult, error) {
	return cover.PrimalDual(h, weights)
}

// VerifyCover checks cover feasibility (req may be nil).
func VerifyCover(h *Hypergraph, c *Cover, req []int) error { return cover.Verify(h, c, req) }

// ExactCover computes an optimal minimum-weight cover by
// branch-and-bound (small instances; maxNodes 0 = default cap).
func ExactCover(h *Hypergraph, weights []float64, maxNodes int64) (*Cover, error) {
	return cover.Exact(h, weights, maxNodes)
}

// UnitWeights returns weight 1 for every vertex.
func UnitWeights(h *Hypergraph) []float64 { return cover.UnitWeights(h) }

// DegreeSquaredWeights returns w(v) = d(v)², the paper's weighting for
// low-degree bait selection.
func DegreeSquaredWeights(h *Hypergraph) []float64 { return cover.DegreeSquaredWeights(h) }

// UniformRequirement returns r_f = r for every hyperedge.
func UniformRequirement(h *Hypergraph, r int) []int { return cover.UniformRequirement(h, r) }

// ---- Statistics ---------------------------------------------------------

// PowerLawFit is a log–log least-squares fit of a degree histogram.
type PowerLawFit = stats.PowerLawFit

// ComponentInfo describes one connected component.
type ComponentInfo = stats.ComponentInfo

// SmallWorld holds diameter and average path length under the
// hypergraph path metric.
type SmallWorld = stats.SmallWorld

// StorageCosts compares representation sizes of the competing models.
type StorageCosts = stats.StorageCosts

// DegreeHistogram counts entries per degree.
func DegreeHistogram(degrees []int) []int { return stats.DegreeHistogram(degrees) }

// FitPowerLaw fits P(d) = c·d^−γ to a degree histogram.
func FitPowerLaw(hist []int) (PowerLawFit, error) { return stats.FitPowerLaw(hist) }

// ExponentialFit is a semi-log least-squares fit P(d) = a·e^−λd.
type ExponentialFit = stats.ExponentialFit

// FitExponential fits an exponential to a degree histogram.
func FitExponential(hist []int) (ExponentialFit, error) { return stats.FitExponential(hist) }

// DistributionVerdict reports which distribution family (if either)
// explains a histogram, as §2 does for complex degrees.
type DistributionVerdict = stats.DistributionVerdict

// JudgeDistribution fits both families against an R² threshold.
func JudgeDistribution(hist []int, threshold float64) DistributionVerdict {
	return stats.JudgeDistribution(hist, threshold)
}

// Components labels the connected components of a hypergraph.
func Components(h *Hypergraph) ([]int32, []int32, []ComponentInfo) { return stats.Components(h) }

// SmallWorldStats computes the exact diameter and average path length
// with a parallel all-pairs BFS.
func SmallWorldStats(h *Hypergraph, workers int) SmallWorld { return stats.SmallWorldStats(h, workers) }

// ComputeStorageCosts measures the §1.2 space argument on h.
func ComputeStorageCosts(h *Hypergraph) StorageCosts { return stats.ComputeStorageCosts(h) }

// ---- Graph models -------------------------------------------------------

// Graph is an immutable simple undirected graph in CSR form.
type Graph = graph.Graph

// BuildGraph constructs a Graph from an edge list.
func BuildGraph(n int, edges [][2]int32) (*Graph, error) { return graph.Build(n, edges) }

// CliqueExpansion replaces each complex by a clique (the lossy PPI
// model the paper criticizes).
func CliqueExpansion(h *Hypergraph) *Graph { return graph.CliqueExpansion(h) }

// StarExpansion replaces each complex by a star rooted at its bait.
func StarExpansion(h *Hypergraph, baitOf []int) *Graph { return graph.StarExpansion(h, baitOf) }

// IntersectionGraph builds the complex intersection graph with overlap
// weights.
func IntersectionGraph(h *Hypergraph) (*Graph, [][2]int32, []int) { return graph.IntersectionGraph(h) }

// Bipartite returns B(H), the bipartite vertex–hyperedge graph.
func Bipartite(h *Hypergraph) *Graph { return graph.Bipartite(h) }

// ---- Interchange ----------------------------------------------------------

// Matrix is a sparse matrix in Matrix Market coordinate form.
type Matrix = mmio.Matrix

// ReadMatrixMarket parses a Matrix Market coordinate file.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return mmio.Read(r) }

// WriteMatrixMarket writes a Matrix Market coordinate file.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return mmio.Write(w, m) }

// MatrixToHypergraph converts columns to hyperedges over row vertices.
func MatrixToHypergraph(m *Matrix) (*Hypergraph, error) { return mmio.ToHypergraph(m) }

// WritePajekNet exports the bipartite drawing of h (Fig. 3), with
// optional core highlighting.
func WritePajekNet(w io.Writer, h *Hypergraph, coreV, coreF []bool) error {
	return pajek.WriteNet(w, h, coreV, coreF)
}

// WritePajekClu exports the core partition as a Pajek .clu file.
func WritePajekClu(w io.Writer, h *Hypergraph, coreV, coreF []bool) error {
	return pajek.WriteClu(w, h, coreV, coreF)
}

// ---- Proteomics substrate ---------------------------------------------

// AnnotationDB holds per-protein essentiality/homology annotations.
type AnnotationDB = bio.AnnotationDB

// Enrichment compares a protein subset against a background fraction.
type Enrichment = bio.Enrichment

// TAPParams models pull-down reliability; TAPOutcome is one simulated
// screen.
type (
	TAPParams  = bio.TAPParams
	TAPOutcome = bio.TAPOutcome
)

// EnrichmentOf computes subset-vs-background enrichment with a
// binomial p-value.
func EnrichmentOf(subset, hit []bool, background float64, description string) Enrichment {
	return bio.EnrichmentOf(subset, hit, background, description)
}

// SimulateTAP runs one synthetic TAP screen over the given baits.
func SimulateTAP(h *Hypergraph, baits []int, p TAPParams, rng *RNG) *TAPOutcome {
	return bio.SimulateTAP(h, baits, p, rng)
}

// Screen records the pull-downs of one simulated TAP experiment;
// Fidelity measures an observed network against the truth.
type (
	Screen   = bio.Screen
	Fidelity = bio.Fidelity
)

// SimulateScreen runs one TAP screen keeping per-pull-down records.
func SimulateScreen(h *Hypergraph, baits []int, p TAPParams, rng *RNG) *Screen {
	return bio.SimulateScreen(h, baits, p, rng)
}

// ObservedHypergraph merges a screen's pull-downs into the observed
// protein-complex network (the analogue of the published dataset).
func ObservedHypergraph(truth *Hypergraph, s *Screen) *Hypergraph {
	return bio.ObservedHypergraph(truth, s)
}

// NetworkFidelity measures how faithfully an observed network
// reproduces the truth.
func NetworkFidelity(truth, observed *Hypergraph) (Fidelity, error) {
	return bio.NetworkFidelity(truth, observed)
}

// RequirementsForReliability derives per-complex multicover
// requirements from a per-complex recovery target at the given
// pull-down success probability.
func RequirementsForReliability(h *Hypergraph, pullDownSuccess, target float64) ([]int, error) {
	return bio.RequirementsForReliability(h, pullDownSuccess, target)
}

// ExpectedRecovery returns the analytic per-complex recovery
// probabilities for a bait set.
func ExpectedRecovery(h *Hypergraph, baits []int, pullDownSuccess float64) ([]float64, float64) {
	return bio.ExpectedRecovery(h, baits, pullDownSuccess)
}

// HyperPath is an alternating vertex–hyperedge path (§1.3).
type HyperPath = stats.HyperPath

// ShortestPath returns a shortest alternating path between two
// vertices (ok = false if disconnected).
func ShortestPath(h *Hypergraph, from, to int) (HyperPath, bool) {
	return stats.ShortestPath(h, from, to)
}

// ---- Datasets and generators --------------------------------------------

// CellzomeInstance is the calibrated synthetic Cellzome dataset with
// its experiment metadata.
type CellzomeInstance = dataset.Instance

// Cellzome builds the deterministic synthetic yeast protein-complex
// hypergraph calibrated to the paper's published statistics.
func Cellzome() *CellzomeInstance { return dataset.Cellzome() }

// LoadInstance reads an instance previously written with
// CellzomeInstance.Save (hypergraph.txt, baits.txt, annotations.json,
// meta.json in one directory).
func LoadInstance(dir string) (*CellzomeInstance, error) { return dataset.LoadInstance(dir) }

// RNG is the deterministic random number generator used by all
// synthetic generators.
type RNG = xrand.RNG

// NewRNG returns a generator with the given seed.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// RandomHypergraph generates a uniform random hypergraph (sizes in
// [1, maxSize]).
func RandomHypergraph(nv, ne, maxSize int, rng *RNG) *Hypergraph {
	return gen.RandomHypergraph(nv, ne, maxSize, rng)
}

// SyntheticProteome generates a Cellzome-shaped protein-complex
// hypergraph at an arbitrary scale (e.g. 20000 proteins for a
// human-proteome-sized workload).
func SyntheticProteome(nProteins, nComplexes int, seed uint64) *Hypergraph {
	return dataset.SyntheticProteome(nProteins, nComplexes, seed)
}
