package hyperplex_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hyperplex"
)

// buildSample constructs the small hypergraph used across the façade
// tests: a planted 3-core {a,b,c,d} with pendants.
func buildSample(t testing.TB) *hyperplex.Hypergraph {
	t.Helper()
	b := hyperplex.NewBuilder()
	b.AddEdge("e1", "a", "b", "c")
	b.AddEdge("e2", "a", "b", "d")
	b.AddEdge("e3", "a", "c", "d")
	b.AddEdge("e4", "b", "c", "d")
	b.AddEdge("p1", "a", "x")
	b.AddEdge("p2", "x", "y")
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestFacadeCorePipeline(t *testing.T) {
	h := buildSample(t)
	mc := hyperplex.MaxCore(h)
	if mc.K != 3 || mc.NumVertices != 4 || mc.NumEdges != 4 {
		t.Fatalf("max core = %d-core %d/%d", mc.K, mc.NumVertices, mc.NumEdges)
	}
	d := hyperplex.Decompose(h)
	if d.MaxK != 3 {
		t.Errorf("MaxK = %d", d.MaxK)
	}
	par := hyperplex.KCoreParallel(h, 3, 2)
	if par.NumVertices != mc.NumVertices {
		t.Errorf("parallel disagrees: %d vs %d", par.NumVertices, mc.NumVertices)
	}
	bi := hyperplex.BiCore(h, 2, 3)
	if bi.NumVertices != 4 {
		t.Errorf("(2,3)-core = %d vertices", bi.NumVertices)
	}
}

func TestFacadeCoverPipeline(t *testing.T) {
	h := buildSample(t)
	g, err := hyperplex.GreedyCover(h, hyperplex.DegreeSquaredWeights(h))
	if err != nil {
		t.Fatal(err)
	}
	if err := hyperplex.VerifyCover(h, g, nil); err != nil {
		t.Error(err)
	}
	e, err := hyperplex.ExactCover(h, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Weight > g.Weight {
		t.Errorf("exact %v worse than greedy %v", e.Weight, g.Weight)
	}
	pd, err := hyperplex.PrimalDualCover(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pd.DualValue > e.Weight+1e-9 {
		t.Errorf("dual %v exceeds optimum %v", pd.DualValue, e.Weight)
	}
	mc, err := hyperplex.GreedyMulticover(h, nil, hyperplex.UniformRequirement(h, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := hyperplex.VerifyCover(h, mc, hyperplex.UniformRequirement(h, 2)); err != nil {
		t.Error(err)
	}
}

func TestFacadeStatsAndModels(t *testing.T) {
	h := buildSample(t)
	_, _, comps := hyperplex.Components(h)
	if len(comps) != 1 {
		t.Errorf("components = %d", len(comps))
	}
	sw := hyperplex.SmallWorldStats(h, 2)
	if sw.Diameter != 3 {
		t.Errorf("diameter = %d", sw.Diameter)
	}
	costs := hyperplex.ComputeStorageCosts(h)
	if costs.CliqueExpansionEdges <= 0 || costs.HypergraphPins != h.NumPins() {
		t.Errorf("costs = %+v", costs)
	}
	bip := hyperplex.Bipartite(h)
	if bip.NumEdges() != h.NumPins() {
		t.Errorf("bipartite edges = %d", bip.NumEdges())
	}
	if g := hyperplex.CliqueExpansion(h); g.NumVertices() != h.NumVertices() {
		t.Error("clique expansion vertex set changed")
	}
	coreness := hyperplex.GraphCoreness(hyperplex.CliqueExpansion(h))
	if len(coreness) != h.NumVertices() {
		t.Error("graph coreness length wrong")
	}
}

func TestFacadeSerializationRoundTrips(t *testing.T) {
	h := buildSample(t)
	var buf bytes.Buffer
	if err := hyperplex.WriteHypergraph(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := hyperplex.ReadHypergraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumPins() != h.NumPins() {
		t.Error("text round trip changed pins")
	}
	var net bytes.Buffer
	if err := hyperplex.WritePajekNet(&net, h, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(net.String(), "*Edges") {
		t.Error("Pajek output missing *Edges")
	}
	mtx := "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
	m, err := hyperplex.ReadMatrixMarket(strings.NewReader(mtx))
	if err != nil {
		t.Fatal(err)
	}
	hm, err := hyperplex.MatrixToHypergraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if hm.NumEdges() != 2 {
		t.Errorf("mtx hypergraph edges = %d", hm.NumEdges())
	}
	var mout bytes.Buffer
	if err := hyperplex.WriteMatrixMarket(&mout, m); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDatasets(t *testing.T) {
	inst := hyperplex.Cellzome()
	if inst.H.NumVertices() != 1361 || inst.H.NumEdges() != 232 {
		t.Fatalf("Cellzome shape: %v", inst.H)
	}
	mc := hyperplex.MaxCore(inst.H)
	if mc.K != 6 {
		t.Errorf("Cellzome max core = %d", mc.K)
	}
	sp := hyperplex.SyntheticProteome(1000, 100, 1)
	if sp.NumVertices() != 1000 {
		t.Errorf("proteome shape: %v", sp)
	}
	rh := hyperplex.RandomHypergraph(40, 20, 5, hyperplex.NewRNG(1))
	if rh.NumVertices() != 40 {
		t.Errorf("random shape: %v", rh)
	}
}

func TestFacadeBioPipeline(t *testing.T) {
	inst := hyperplex.Cellzome()
	rng := hyperplex.NewRNG(3)
	params := hyperplex.TAPParams{PullDownSuccess: 0.7, PreyDetection: 0.9, RecoveryFraction: 0.75}
	o := hyperplex.SimulateTAP(inst.H, inst.BaitsReported, params, rng)
	if o.RecoveredCount() == 0 {
		t.Error("no complexes recovered with 459 baits at 70%")
	}
	e := hyperplex.EnrichmentOf(inst.CoreV, inst.Ann.Essential, 0.218, "core essential")
	if e.Subset != 41 {
		t.Errorf("enrichment subset = %d", e.Subset)
	}
}

func TestFacadeFits(t *testing.T) {
	hist := []int{0, 800, 160, 60, 30, 16, 10}
	pl, err := hyperplex.FitPowerLaw(hist)
	if err != nil || pl.Gamma <= 0 {
		t.Errorf("power-law fit: %v %v", pl, err)
	}
	ex, err := hyperplex.FitExponential(hist)
	if err != nil || ex.Lambda <= 0 {
		t.Errorf("exponential fit: %v %v", ex, err)
	}
	v := hyperplex.JudgeDistribution(hist, 0.9)
	if !v.PowerLawOK {
		t.Errorf("verdict: %v", v)
	}
}

// ExampleMaxCore demonstrates the core-proteome computation on a toy
// network.
func ExampleMaxCore() {
	b := hyperplex.NewBuilder()
	b.AddEdge("c1", "a", "b", "c")
	b.AddEdge("c2", "a", "b", "d")
	b.AddEdge("c3", "a", "c", "d")
	b.AddEdge("c4", "b", "c", "d")
	b.AddEdge("pendant", "a", "x")
	h, _ := b.Build()

	mc := hyperplex.MaxCore(h)
	fmt.Printf("%d-core: %d proteins, %d complexes\n", mc.K, mc.NumVertices, mc.NumEdges)
	// Output:
	// 3-core: 4 proteins, 4 complexes
}

// ExampleGreedyCover demonstrates bait selection with degree² weights.
func ExampleGreedyCover() {
	b := hyperplex.NewBuilder()
	b.AddEdge("c1", "hub", "p1")
	b.AddEdge("c2", "hub", "p2")
	b.AddEdge("c3", "hub", "p3")
	h, _ := b.Build()

	unweighted, _ := hyperplex.GreedyCover(h, nil)
	weighted, _ := hyperplex.GreedyCover(h, hyperplex.DegreeSquaredWeights(h))
	fmt.Printf("unweighted picks %d bait(s); degree²-weighted picks %d\n",
		unweighted.Size(), weighted.Size())
	// Output:
	// unweighted picks 1 bait(s); degree²-weighted picks 3
}

// ExampleFitPowerLaw fits the degree distribution of Fig. 1.
func ExampleFitPowerLaw() {
	hist := []int{0, 1000, 177, 64, 31} // ≈ 1000·d^−2.5
	fit, _ := hyperplex.FitPowerLaw(hist)
	fmt.Printf("gamma ≈ %.1f, R² > 0.99: %v\n", fit.Gamma, fit.R2 > 0.99)
	// Output:
	// gamma ≈ 2.5, R² > 0.99: true
}

func TestFacadeObservedNetwork(t *testing.T) {
	inst := hyperplex.Cellzome()
	rng := hyperplex.NewRNG(11)
	params := hyperplex.TAPParams{PullDownSuccess: 0.7, PreyDetection: 0.9, RecoveryFraction: 0.75}
	screen := hyperplex.SimulateScreen(inst.H, inst.BaitsReported, params, rng)
	obs := hyperplex.ObservedHypergraph(inst.H, screen)
	if obs.NumEdges() == 0 || obs.NumEdges() > inst.H.NumEdges() {
		t.Fatalf("observed %d complexes of %d", obs.NumEdges(), inst.H.NumEdges())
	}
	fi, err := hyperplex.NetworkFidelity(inst.H, obs)
	if err != nil {
		t.Fatal(err)
	}
	if fi.MeanJaccard <= 0.5 {
		t.Errorf("fidelity suspiciously low: %v", fi)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	dir := t.TempDir()
	inst := hyperplex.Cellzome()
	if err := inst.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := hyperplex.LoadInstance(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.H.NumPins() != inst.H.NumPins() {
		t.Error("round trip changed pins")
	}
}

func TestFacadeGraphBuildAndClu(t *testing.T) {
	g, err := hyperplex.BuildGraph(3, [][2]int32{{0, 1}, {1, 2}})
	if err != nil || g.NumEdges() != 2 {
		t.Fatalf("BuildGraph: %v %v", g, err)
	}
	if _, err := hyperplex.BuildGraph(1, [][2]int32{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	h := buildSample(t)
	var clu bytes.Buffer
	if err := hyperplex.WritePajekClu(&clu, h, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(clu.String(), "*Vertices") {
		t.Error("clu header missing")
	}
	ig, edges, weights := hyperplex.IntersectionGraph(h)
	if ig.NumVertices() != h.NumEdges() || len(edges) != len(weights) {
		t.Error("intersection graph shape wrong")
	}
	star := hyperplex.StarExpansion(h, nil)
	if star.NumVertices() != h.NumVertices() {
		t.Error("star expansion shape wrong")
	}
}

func TestFacadeBiCoreAndExamplesCompile(t *testing.T) {
	h := buildSample(t)
	d := hyperplex.Decompose(h)
	if len(d.Profile()) != d.MaxK {
		t.Error("profile length mismatch")
	}
	p, ok := hyperplex.ShortestPath(h, 0, 1)
	if !ok || p.Len() < 1 {
		t.Errorf("path: %+v %v", p, ok)
	}
	req, err := hyperplex.RequirementsForReliability(h, 0.7, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if _, mean := hyperplex.ExpectedRecovery(h, []int{0}, 0.7); mean <= 0 {
		t.Error("expected recovery zero")
	}
	c, err := hyperplex.GreedyMulticover(h, nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := hyperplex.VerifyCover(h, c, req); err != nil {
		t.Error(err)
	}
}
